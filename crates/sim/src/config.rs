//! Simulation configuration (§5.1.7, Table 2).

use cqp_core::hbc::HbcConfig;
use cqp_core::iq::IqConfig;
use cqp_core::lcll::RefiningStrategy;
use cqp_core::{
    Adaptive, ContinuousQuantile, Gk, GkSinkQuantile, Hbc, Iq, Lcll, LcllRange, Pos,
    QDigestQuantile, QueryConfig, Tag,
};
use wsn_data::pressure::PressureConfig;
use wsn_data::synthetic::SyntheticConfig;
use wsn_net::{MessageSizes, RadioModel, ReliabilityConfig};

/// Which protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// TAG baseline \[17\].
    Tag,
    /// POS binary-search baseline \[9\].
    Pos,
    /// LCLL with hierarchical refining \[16\].
    LcllH,
    /// LCLL with slip refining \[16\].
    LcllS,
    /// LCLL, range-anchored reconstruction (static bucket hierarchy).
    LcllR,
    /// HBC (paper §4.1, default improvements).
    Hbc,
    /// HBC §4.1.2 no-threshold-broadcast variant.
    HbcNb,
    /// IQ (paper §4.2).
    Iq,
    /// Adaptive HBC↔IQ switching (future work).
    Adaptive,
    /// Summary-based exact snapshot method (§3.1, \[10\]).
    Gk,
    /// Q-digest mergeable sketch (approximate, `⌊ε·n⌋` rank error;
    /// extension). `eps_milli` is ε in thousandths.
    QDigest {
        /// Error budget ε in thousandths (e.g. 100 = 10 %).
        eps_milli: u32,
    },
    /// GK-style ε-tolerant incremental sink summary (approximate;
    /// extension). `capacity` 0 derives the per-message entry budget
    /// from the payload size.
    GkSink {
        /// Error budget ε in thousandths.
        eps_milli: u32,
        /// Summary entries per message (0 = derived from payload size).
        capacity: u32,
    },
}

impl AlgorithmKind {
    /// The six algorithms compared in §5 of the paper.
    pub const PAPER_SET: [AlgorithmKind; 6] = [
        AlgorithmKind::Tag,
        AlgorithmKind::Pos,
        AlgorithmKind::LcllH,
        AlgorithmKind::LcllS,
        AlgorithmKind::Hbc,
        AlgorithmKind::Iq,
    ];

    /// The full differential-oracle battery: the paper set plus the two
    /// approximate sketch protocols at the given ε/capacity operating
    /// point (8 protocols; `crates/check` runs every scenario through it).
    pub fn battery(eps_milli: u32, capacity: u32) -> [AlgorithmKind; 8] {
        [
            AlgorithmKind::Tag,
            AlgorithmKind::Pos,
            AlgorithmKind::LcllH,
            AlgorithmKind::LcllS,
            AlgorithmKind::Hbc,
            AlgorithmKind::Iq,
            AlgorithmKind::QDigest { eps_milli },
            AlgorithmKind::GkSink {
                eps_milli,
                capacity,
            },
        ]
    }

    /// True for the approximate sketch protocols (non-zero certified
    /// rank tolerance); the exact battery returns false.
    pub fn is_approximate(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::QDigest { .. } | AlgorithmKind::GkSink { .. }
        )
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::Tag => "TAG",
            AlgorithmKind::Pos => "POS",
            AlgorithmKind::LcllH => "LCLL-H",
            AlgorithmKind::LcllS => "LCLL-S",
            AlgorithmKind::LcllR => "LCLL-R",
            AlgorithmKind::Hbc => "HBC",
            AlgorithmKind::HbcNb => "HBC-nb",
            AlgorithmKind::Iq => "IQ",
            AlgorithmKind::Adaptive => "Adaptive",
            AlgorithmKind::Gk => "GK",
            AlgorithmKind::QDigest { .. } => "QD",
            AlgorithmKind::GkSink { .. } => "GKS",
        }
    }

    /// Instantiates the protocol for a query.
    pub fn build(&self, query: QueryConfig, sizes: &MessageSizes) -> Box<dyn ContinuousQuantile> {
        match self {
            AlgorithmKind::Tag => Box::new(Tag::new(query)),
            AlgorithmKind::Pos => Box::new(Pos::new(query)),
            AlgorithmKind::LcllH => {
                Box::new(Lcll::new(query, RefiningStrategy::Hierarchical, sizes))
            }
            AlgorithmKind::LcllS => Box::new(Lcll::new(query, RefiningStrategy::Slip, sizes)),
            AlgorithmKind::LcllR => Box::new(LcllRange::new(query, sizes)),
            AlgorithmKind::Hbc => Box::new(Hbc::new(query, HbcConfig::default(), sizes)),
            AlgorithmKind::HbcNb => Box::new(Hbc::new(
                query,
                HbcConfig {
                    direct_retrieval: false,
                    eliminate_threshold_broadcast: true,
                    ..HbcConfig::default()
                },
                sizes,
            )),
            AlgorithmKind::Iq => Box::new(Iq::new(query, IqConfig::default())),
            AlgorithmKind::Adaptive => Box::new(Adaptive::new(query, sizes)),
            AlgorithmKind::Gk => Box::new(Gk::new(query, sizes)),
            AlgorithmKind::QDigest { eps_milli } => {
                Box::new(QDigestQuantile::new(query, *eps_milli))
            }
            AlgorithmKind::GkSink {
                eps_milli,
                capacity,
            } => Box::new(GkSinkQuantile::new(query, sizes, *eps_milli, *capacity)),
        }
    }
}

/// Which dataset drives the measurements.
#[derive(Debug, Clone)]
pub enum DatasetSpec {
    /// The synthetic sinusoidal workload (§5.1.2); nodes placed uniformly.
    Synthetic(SyntheticConfig),
    /// The barometric-pressure traces (§5.1.3); nodes placed by a SOM and
    /// the node count comes from the dataset itself.
    Pressure(PressureConfig),
    /// Per-node bounded random walks (extension; uniform placement).
    /// Fields: value-range size and maximum per-round step.
    RandomWalk {
        /// Number of values in the universe (range is `[0, size)`).
        range_size: u64,
        /// Maximum per-round step per node.
        step: i64,
    },
    /// Calm-drift / turbulence regime switching (extension; uniform
    /// placement). The stress test for [`AlgorithmKind::Adaptive`].
    Regime {
        /// Number of values in the universe.
        range_size: u64,
        /// Rounds per regime phase.
        phase_len: u32,
        /// Per-round drift during calm phases.
        drift: i64,
    },
}

/// Dynamic-world knobs: mobility, churn, link drift and duty-cycled
/// radios (see `crate::dynamics` and DESIGN.md §3.3k). All zeros — the
/// [`Default`] — is the static world; the runner then draws nothing from
/// the dynamics stream, so a `Some(DynamicsConfig::default())` run is
/// bit-identical to a `None` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsConfig {
    /// Euclidean meters each sensor moves per mobility epoch (waypoint
    /// walk; `0.0` = static placement). The sink never moves.
    pub mobility_step: f64,
    /// Per-round probability that a sensor churns (toggles between
    /// departed and joined). `0.0` disables churn.
    pub churn: f64,
    /// Link-drift amplitude: the loss probability random-walks within
    /// `base ± drift` (clamped to `[0, 1]`). `0.0` pins the configured
    /// loss rate. Only meaningful with a loss model installed.
    pub drift: f64,
    /// Duty-cycle listen fraction in per-mille (`0..=1000`): idle-listen
    /// joules charged per live sensor per round. `0` = no idle radio.
    pub duty_milli: u32,
    /// Rounds per mobility epoch (positions advance and links re-derive
    /// every `epoch` rounds). Clamped to at least 1.
    pub epoch: u32,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            mobility_step: 0.0,
            churn: 0.0,
            drift: 0.0,
            duty_milli: 0,
            epoch: 1,
        }
    }
}

impl DynamicsConfig {
    /// True iff every knob is at its static-world zero.
    pub fn is_static(&self) -> bool {
        self.mobility_step == 0.0 && self.churn == 0.0 && self.drift == 0.0 && self.duty_milli == 0
    }
}

/// Full configuration of one experiment cell.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Number of sensor nodes `|N|` (ignored for pressure, which fixes
    /// 1022 nodes like the paper unless overridden in its config).
    pub sensor_count: usize,
    /// Radio range ρ in meters.
    pub radio_range: f64,
    /// Rounds per simulation run (paper: 250).
    pub rounds: u32,
    /// Simulation runs to average over (paper: 20). Topology (and, for the
    /// synthetic dataset, placement) changes between runs.
    pub runs: u32,
    /// Quantile parameter φ (paper: the median, 0.5).
    pub phi: f64,
    /// Master seed.
    pub seed: u64,
    /// Radio energy model.
    pub radio: RadioModel,
    /// Message sizing.
    pub sizes: MessageSizes,
    /// Bernoulli message-loss probability (`None` = reliable links, the
    /// paper's assumption; `Some` enables the §6 extension).
    pub loss: Option<f64>,
    /// Reliability layer (ARQ retries + wave recovery). The default is
    /// fire-and-forget, bit-identical to the plain lossy path; it only
    /// acts when `loss` is set.
    pub reliability: ReliabilityConfig,
    /// Per-round crash-stop node-failure probability (`None` = immortal
    /// nodes, the paper's assumption). The routing tree is repaired after
    /// every failure.
    pub node_failure: Option<f64>,
    /// Record every transmission and replay it through the energy auditor
    /// after each run, asserting that the ledger's per-node per-round
    /// charges reconcile bit-exactly with the recorded traffic. Costs
    /// memory proportional to the traffic volume; off by default.
    pub audit: bool,
    /// Record wall-clock spans (rounds, phases, waves, per-link sends)
    /// during each run. Off by default: a disabled recorder costs one
    /// branch per tap point and keeps the hot path allocation-free.
    /// Telemetry histograms are always on regardless of this flag.
    pub telemetry: bool,
    /// Worker threads *within* each run's convergecast waves (on top of the
    /// per-run parallelism of [`crate::parallel`]): disjoint root subtrees
    /// are aggregated concurrently and all accounting is replayed in the
    /// sequential wave order, so results are bit-identical at any value.
    /// `1` (the default) runs waves on the caller's thread.
    pub wave_workers: usize,
    /// Dynamic-world processes (mobility, churn, drift, duty cycle).
    /// `None` — and `Some` with every knob at zero — is the static world
    /// of the paper, bit-identical to releases without this field.
    pub dynamics: Option<DynamicsConfig>,
    /// Dataset.
    pub dataset: DatasetSpec,
}

impl Default for SimulationConfig {
    /// The defaults of Table 2: |N| = 1000, ρ = 35 m, 250 rounds, 20 runs,
    /// median query, synthetic dataset with τ = 125 and ψ = 10 %.
    fn default() -> Self {
        SimulationConfig {
            sensor_count: 1000,
            radio_range: 35.0,
            rounds: 250,
            runs: 20,
            phi: 0.5,
            seed: 0xC0FFEE,
            radio: RadioModel::default(),
            sizes: MessageSizes::default(),
            loss: None,
            reliability: ReliabilityConfig::default(),
            node_failure: None,
            audit: false,
            telemetry: false,
            wave_workers: 1,
            dynamics: None,
            dataset: DatasetSpec::Synthetic(SyntheticConfig::default()),
        }
    }
}

impl SimulationConfig {
    /// A scaled-down configuration for fast tests and CI (fewer nodes,
    /// rounds and runs; same structure).
    pub fn quick() -> Self {
        SimulationConfig {
            sensor_count: 120,
            rounds: 60,
            runs: 3,
            ..SimulationConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_matches_section_5() {
        let names: Vec<&str> = AlgorithmKind::PAPER_SET.iter().map(|a| a.name()).collect();
        assert_eq!(names, ["TAG", "POS", "LCLL-H", "LCLL-S", "HBC", "IQ"]);
    }

    #[test]
    fn build_produces_matching_names() {
        let sizes = MessageSizes::default();
        let q = QueryConfig::median(100, 0, 1023);
        for kind in [
            AlgorithmKind::Tag,
            AlgorithmKind::Pos,
            AlgorithmKind::LcllH,
            AlgorithmKind::LcllS,
            AlgorithmKind::LcllR,
            AlgorithmKind::Hbc,
            AlgorithmKind::HbcNb,
            AlgorithmKind::Iq,
            AlgorithmKind::Adaptive,
            AlgorithmKind::Gk,
            AlgorithmKind::QDigest { eps_milli: 100 },
            AlgorithmKind::GkSink {
                eps_milli: 100,
                capacity: 0,
            },
        ] {
            let alg = kind.build(q, &sizes);
            assert_eq!(alg.name(), kind.name());
        }
    }

    #[test]
    fn battery_is_paper_set_plus_sketches() {
        let battery = AlgorithmKind::battery(100, 0);
        assert_eq!(battery.len(), 8);
        assert_eq!(&battery[..6], &AlgorithmKind::PAPER_SET[..]);
        assert!(battery[6].is_approximate());
        assert!(battery[7].is_approximate());
        assert_eq!(battery[6].name(), "QD");
        assert_eq!(battery[7].name(), "GKS");
        assert!(AlgorithmKind::PAPER_SET.iter().all(|k| !k.is_approximate()));
    }

    #[test]
    fn defaults_follow_table_2() {
        let cfg = SimulationConfig::default();
        assert_eq!(cfg.sensor_count, 1000);
        assert_eq!(cfg.radio_range, 35.0);
        assert_eq!(cfg.rounds, 250);
        assert_eq!(cfg.runs, 20);
        assert_eq!(cfg.phi, 0.5);
        match cfg.dataset {
            DatasetSpec::Synthetic(s) => {
                assert_eq!(s.period, 125);
                assert_eq!(s.noise_percent, 10.0);
            }
            _ => panic!("default dataset must be synthetic"),
        }
    }
}
