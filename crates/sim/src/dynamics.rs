//! Dynamic-world processes: node mobility, churn, link-quality drift and
//! duty-cycled radios (DESIGN.md §3.3k).
//!
//! [`DynamicsState`] owns every stochastic process behind a dynamic world
//! and advances them once per round, *before* the protocol round:
//!
//! 1. **Drift** — the loss probability random-walks inside
//!    `base ± amplitude` ([`wsn_net::LossDrift`]); the loss model's fate
//!    stream is retuned in place, never restarted.
//! 2. **Churn** — each sensor independently toggles between departed and
//!    joined with the configured per-round probability. Joins re-enter at
//!    a fresh uniform position drawn from the dynamics stream
//!    (deterministic join placement); departures are crash-stop. The node
//!    universe never changes size, and the sink never churns.
//! 3. **Mobility** — on every epoch boundary (`t % epoch == 0`) all
//!    sensors advance along their waypoint walks
//!    ([`wsn_data::WaypointWalk`]); the sink stays put.
//!
//! Any churn toggle or mobility advance re-derives the disk graph from
//! the current positions and forces one routing-tree rebuild
//! ([`wsn_net::Network::dynamics_rebuild`]), charged under
//! [`wsn_net::Phase::Rebuild`]. Drift alone never rebuilds: link quality
//! changes the loss process, not the connectivity graph. Duty-cycled
//! idle listening is not a per-round event at all — the network charges
//! it inside `end_round` once [`wsn_net::Network::set_duty_cycle`] is set.
//!
//! **Determinism.** The dynamics stream is forked from the run RNG *after*
//! every gated legacy draw (loss seed, failure seed), and only when a
//! non-static [`DynamicsConfig`] is present — so static worlds draw
//! nothing and replay their historical streams byte-identically. All
//! dynamics decisions happen on the caller's thread between rounds; the
//! within-wave worker count never observes them, which keeps dynamic
//! worlds bit-identical at 1/2/8 wave workers.

use wsn_data::{Rng, WaypointWalk};
use wsn_net::{LossDrift, Network, NodeId, Point, Topology};

use crate::config::DynamicsConfig;
use crate::runner::AREA;

/// Live state of the dynamic-world processes for one run.
#[derive(Debug, Clone)]
pub struct DynamicsState {
    cfg: DynamicsConfig,
    /// The sink's (immobile) position.
    sink: Point,
    /// Sensor positions and waypoints (sensor `i` = node `i + 1`). With
    /// `mobility_step == 0` the walk is frozen and only serves churn's
    /// join placement.
    walk: WaypointWalk,
    drift: Option<LossDrift>,
    /// Churn draws (one per sensor per round, outcome-independent).
    rng: Rng,
    radio_range: f64,
}

impl DynamicsState {
    /// Builds the dynamics processes for a run over the freshly built
    /// `topo`. `loss_base` is the configured static loss probability the
    /// drift walk is centered on (`None` disables drift — there is no
    /// loss process to drive). Forks its own streams from `rng`.
    pub fn new(
        cfg: &DynamicsConfig,
        topo: &Topology,
        loss_base: Option<f64>,
        rng: &mut Rng,
    ) -> DynamicsState {
        let mut dyn_rng = rng.fork();
        let start: Vec<Point> = topo.sensor_ids().map(|id| topo.position(id)).collect();
        let walk = WaypointWalk::new(start, AREA, AREA, cfg.mobility_step, &mut dyn_rng);
        let drift = match (cfg.drift > 0.0, loss_base) {
            (true, Some(base)) => Some(LossDrift::new(base, cfg.drift, dyn_rng.next_u64())),
            _ => None,
        };
        DynamicsState {
            cfg: *cfg,
            sink: topo.position(NodeId::ROOT),
            walk,
            drift,
            rng: dyn_rng,
            radio_range: topo.radio_range(),
        }
    }

    /// Advances every process by one round (call before the protocol
    /// round of round `t`). Returns `true` iff the routing tree was
    /// rebuilt — the caller then notifies the protocol via
    /// [`cqp_core::ContinuousQuantile::topology_changed`].
    pub fn apply(&mut self, t: u32, net: &mut Network) -> bool {
        if let Some(d) = self.drift.as_mut() {
            net.set_loss_probability(d.advance());
        }
        let mut changed = false;
        if self.cfg.churn > 0.0 {
            // One draw per sensor regardless of outcome, so the stream
            // position is a pure function of (round, sensor count).
            for i in 1..net.len() {
                if self.rng.next_f64() < self.cfg.churn {
                    let joining = !net.alive()[i];
                    net.set_node_alive(NodeId(i as u32), joining);
                    if joining {
                        self.walk.replace(i - 1);
                    }
                    changed = true;
                }
            }
        }
        if self.cfg.mobility_step > 0.0 && t.is_multiple_of(self.cfg.epoch.max(1)) {
            self.walk.advance();
            changed = true;
        }
        if changed {
            let mut positions = Vec::with_capacity(net.len());
            positions.push(self.sink);
            positions.extend_from_slice(self.walk.positions());
            net.dynamics_rebuild(Some(Topology::build(positions, self.radio_range)));
        }
        changed
    }
}

/// Installs the per-network dynamics knobs (duty cycle) and builds the
/// per-run [`DynamicsState`] — or nothing, for static worlds: a `None`
/// config *and* an all-zero config both draw nothing from `rng` and touch
/// nothing, so legacy runs replay byte-identically.
pub fn init(
    cfg: Option<&DynamicsConfig>,
    loss_base: Option<f64>,
    net: &mut Network,
    rng: &mut Rng,
) -> Option<DynamicsState> {
    let d = cfg?;
    if d.is_static() {
        return None;
    }
    net.set_duty_cycle(d.duty_milli);
    Some(DynamicsState::new(d, net.topology(), loss_base, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_net::{MessageSizes, RadioModel, RoutingTree};

    fn world(n: usize, range: f64, seed: u64) -> (Network, Rng) {
        let mut rng = Rng::seed_from_u64(seed);
        let raw = wsn_data::placement::uniform(n, AREA, AREA, &mut rng);
        let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let topo = Topology::build(positions, range);
        let tree = RoutingTree::shortest_path_tree(&topo).expect("connected");
        let net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
        (net, rng)
    }

    #[test]
    fn static_config_initializes_nothing_and_draws_nothing() {
        let (mut net, mut rng) = world(20, 300.0, 1);
        let before = rng.clone();
        assert!(init(None, None, &mut net, &mut rng).is_none());
        assert!(init(Some(&DynamicsConfig::default()), None, &mut net, &mut rng).is_none());
        assert_eq!(net.duty_cycle(), 0);
        // The run stream is untouched by static initialization.
        let mut a = before;
        let mut b = rng;
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mobility_rebuilds_on_epoch_boundaries_only() {
        let (mut net, mut rng) = world(12, 300.0, 2);
        let cfg = DynamicsConfig {
            mobility_step: 5.0,
            epoch: 3,
            ..DynamicsConfig::default()
        };
        let mut st = init(Some(&cfg), None, &mut net, &mut rng).expect("dynamic");
        let rebuilt: Vec<bool> = (0..7).map(|t| st.apply(t, &mut net)).collect();
        assert_eq!(rebuilt, [true, false, false, true, false, false, true]);
        assert_eq!(net.reliability_stats().rebuilds, 3);
        assert!(
            net.phases().get(wsn_net::Phase::Rebuild).joules > 0.0,
            "beacon waves must charge rebuild joules"
        );
    }

    #[test]
    fn churn_toggles_and_rejoins_deterministically() {
        let (mut net, mut rng) = world(16, 300.0, 3);
        let cfg = DynamicsConfig {
            churn: 0.3,
            ..DynamicsConfig::default()
        };
        let mut st = init(Some(&cfg), None, &mut net, &mut rng).expect("dynamic");
        let mut saw_departure = false;
        let mut saw_join = false;
        let mut prev_alive: Vec<bool> = net.alive().to_vec();
        for t in 0..30 {
            st.apply(t, &mut net);
            for (p, c) in prev_alive.iter().zip(net.alive()) {
                if *p && !*c {
                    saw_departure = true;
                }
                if !*p && *c {
                    saw_join = true;
                }
            }
            prev_alive = net.alive().to_vec();
            assert!(net.alive()[0], "the sink never churns");
        }
        assert!(saw_departure && saw_join, "30 rounds at 30% churn");
        assert!(net.reliability_stats().rebuilds > 0);
    }

    #[test]
    fn drift_retunes_without_rebuilding() {
        let (mut net, mut rng) = world(10, 300.0, 4);
        net.set_loss(Some(wsn_net::LossModel::new(0.2, 7)));
        let cfg = DynamicsConfig {
            drift: 0.15,
            ..DynamicsConfig::default()
        };
        let mut st = init(Some(&cfg), Some(0.2), &mut net, &mut rng).expect("dynamic");
        for t in 0..20 {
            assert!(!st.apply(t, &mut net), "drift alone never rebuilds");
        }
        assert_eq!(net.reliability_stats().rebuilds, 0);
    }

    #[test]
    fn duty_cycle_is_installed_on_the_network() {
        let (mut net, mut rng) = world(10, 300.0, 5);
        let cfg = DynamicsConfig {
            duty_milli: 250,
            ..DynamicsConfig::default()
        };
        let st = init(Some(&cfg), None, &mut net, &mut rng);
        assert!(st.is_some(), "duty alone is a dynamic world");
        assert_eq!(net.duty_cycle(), 250);
    }
}
