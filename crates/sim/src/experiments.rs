//! The paper's experiment sweeps (§5.2, Figures 4 and 6–10) plus the two
//! future-work extensions, pre-configured. Every table and figure of the
//! evaluation maps to one [`Sweep`] (or the special Fig.-4 trace).

use cqp_core::iq::IqConfig;
use cqp_core::{ContinuousQuantile, Iq, QueryConfig};
use wsn_data::pressure::{PressureConfig, RangeSetting};
use wsn_data::synthetic::SyntheticConfig;
use wsn_data::{Dataset, Rng, SyntheticDataset};

use crate::config::{AlgorithmKind, DatasetSpec, SimulationConfig};
use crate::metrics::AggregatedMetrics;
use crate::runner::run_experiment_threads;

/// One experiment cell: an x-axis label plus its configuration.
#[derive(Debug, Clone)]
pub struct Cell {
    /// X-axis label ("|N|=1000", "τ=63", …).
    pub label: String,
    /// The configuration of this cell.
    pub config: SimulationConfig,
}

/// A full sweep behind one figure.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Identifier ("fig6" … "fig10", "loss", "adaptive").
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The x-axis cells.
    pub cells: Vec<Cell>,
    /// Algorithms compared.
    pub algorithms: Vec<AlgorithmKind>,
    /// Algorithms skipped for specific cells because their cost explodes
    /// (the paper likewise "cut off the graphs of TAG", §5.1.6):
    /// `(algorithm, cell label)` pairs.
    pub skip: Vec<(AlgorithmKind, String)>,
}

/// Results of a sweep: `results[alg][cell]`.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// The sweep that was run.
    pub sweep: Sweep,
    /// Per-algorithm, per-cell metrics (`None` where skipped).
    pub results: Vec<Vec<Option<AggregatedMetrics>>>,
}

/// Runs every cell of a sweep for every algorithm, in parallel on
/// [`crate::parallel::thread_count`] workers. Deterministic: cell metrics
/// depend only on `(config, algorithm)`, never on scheduling.
pub fn run_sweep(sweep: &Sweep) -> SweepResults {
    run_sweep_threads(sweep, crate::parallel::thread_count())
}

/// [`run_sweep`] with an explicit worker count (`1` = fully sequential).
///
/// The algorithm × cell grid is the outer parallel dimension (cells differ
/// wildly in cost, so dynamic scheduling over the grid balances best).
/// When more workers are available than grid points, the surplus goes to
/// each cell's inner `runs` loop; otherwise cells run their runs
/// sequentially to avoid oversubscription.
pub fn run_sweep_threads(sweep: &Sweep, threads: usize) -> SweepResults {
    let cells = sweep.cells.len();
    let grid = sweep.algorithms.len() * cells;
    let inner = if grid == 0 { 1 } else { threads.div_ceil(grid) };
    let mut flat = crate::parallel::map_indexed(grid, threads, |i| {
        let alg = sweep.algorithms[i / cells];
        let cell = &sweep.cells[i % cells];
        let skipped = sweep
            .skip
            .iter()
            .any(|(a, l)| *a == alg && *l == cell.label);
        (!skipped).then(|| run_experiment_threads(&cell.config, alg, inner))
    });
    let mut results = Vec::with_capacity(sweep.algorithms.len());
    for _ in &sweep.algorithms {
        let rest = flat.split_off(cells);
        results.push(flat);
        flat = rest;
    }
    SweepResults {
        sweep: sweep.clone(),
        results,
    }
}

fn base(quick: bool) -> SimulationConfig {
    if quick {
        SimulationConfig {
            sensor_count: 150,
            rounds: 80,
            runs: 3,
            ..SimulationConfig::default()
        }
    } else {
        // Full fidelity: 20 runs × 250 rounds, exactly Table 2.
        SimulationConfig::default()
    }
}

fn synthetic(cfg: &SimulationConfig) -> SyntheticConfig {
    match &cfg.dataset {
        DatasetSpec::Synthetic(s) => s.clone(),
        _ => unreachable!("base config is synthetic"),
    }
}

/// Figure 6: varying the number of nodes `|N|`.
pub fn fig6(quick: bool) -> Sweep {
    let b = base(quick);
    let ns: &[usize] = if quick {
        &[60, 120, 250]
    } else {
        &[250, 500, 1000, 2000, 4000]
    };
    let cells = ns
        .iter()
        .map(|&n| Cell {
            label: format!("|N|={n}"),
            config: SimulationConfig {
                sensor_count: n,
                ..b.clone()
            },
        })
        .collect();
    // TAG's O(k·|N|) collection makes the largest cell disproportionately
    // expensive to simulate — the paper cuts TAG off as well.
    let skip = if quick {
        vec![]
    } else {
        vec![(AlgorithmKind::Tag, "|N|=4000".to_string())]
    };
    Sweep {
        id: "fig6",
        title: "Fig. 6 — Synthetic dataset, varying |N|",
        cells,
        algorithms: AlgorithmKind::PAPER_SET.to_vec(),
        skip,
    }
}

/// Figure 7: varying the sinusoid period τ.
pub fn fig7(quick: bool) -> Sweep {
    let b = base(quick);
    let periods: &[u32] = &[250, 125, 63, 32, 8];
    let cells = periods
        .iter()
        .map(|&p| Cell {
            label: format!("τ={p}"),
            config: SimulationConfig {
                dataset: DatasetSpec::Synthetic(SyntheticConfig {
                    period: p,
                    ..synthetic(&b)
                }),
                ..b.clone()
            },
        })
        .collect();
    Sweep {
        id: "fig7",
        title: "Fig. 7 — Synthetic dataset, varying the period τ",
        cells,
        algorithms: AlgorithmKind::PAPER_SET.to_vec(),
        skip: vec![],
    }
}

/// Figure 8: varying the measurement noise ψ.
pub fn fig8(quick: bool) -> Sweep {
    let b = base(quick);
    let noises: &[f64] = &[0.0, 5.0, 10.0, 20.0, 50.0];
    let cells = noises
        .iter()
        .map(|&psi| Cell {
            label: format!("ψ={psi}%"),
            config: SimulationConfig {
                dataset: DatasetSpec::Synthetic(SyntheticConfig {
                    noise_percent: psi,
                    ..synthetic(&b)
                }),
                ..b.clone()
            },
        })
        .collect();
    Sweep {
        id: "fig8",
        title: "Fig. 8 — Synthetic dataset, varying the noise ψ",
        cells,
        algorithms: AlgorithmKind::PAPER_SET.to_vec(),
        skip: vec![],
    }
}

/// Figure 9: varying the radio range ρ.
pub fn fig9(quick: bool) -> Sweep {
    let mut b = base(quick);
    if quick {
        // ρ = 15 m needs enough density to stay connected.
        b.sensor_count = 400;
    }
    let ranges: &[f64] = &[15.0, 35.0, 60.0, 85.0];
    let cells = ranges
        .iter()
        .map(|&rho| Cell {
            label: format!("ρ={rho}m"),
            config: SimulationConfig {
                radio_range: rho,
                ..b.clone()
            },
        })
        .collect();
    Sweep {
        id: "fig9",
        title: "Fig. 9 — Synthetic dataset, varying the radio range ρ",
        cells,
        algorithms: AlgorithmKind::PAPER_SET.to_vec(),
        skip: vec![],
    }
}

/// Figure 10: pressure dataset, varying the sampling rate, in the
/// optimistic and pessimistic range settings (§5.2.5).
pub fn fig10(quick: bool) -> Sweep {
    let b = base(quick);
    let (sensors, rounds) = if quick { (150, 60) } else { (1022, 250) };
    let skips: &[u32] = &[1, 2, 4, 8, 16];
    // All skip cells share the same raw trace length (and therefore the
    // same underlying regional pressure series for a given seed) so the
    // sweep isolates the sampling rate, §5.2.5.
    let steps = (rounds as usize) * (*skips.last().expect("non-empty")) as usize + 1;
    let mut cells = Vec::new();
    for &(range, tag) in &[
        (RangeSetting::Optimistic, "opt"),
        (RangeSetting::Pessimistic, "pess"),
    ] {
        for &skip in skips {
            cells.push(Cell {
                label: format!("skip={skip} ({tag})"),
                config: SimulationConfig {
                    rounds,
                    dataset: DatasetSpec::Pressure(PressureConfig {
                        sensor_count: sensors,
                        steps,
                        skip,
                        range,
                        ..PressureConfig::default()
                    }),
                    ..b.clone()
                },
            });
        }
    }
    Sweep {
        id: "fig10",
        title: "Fig. 10 — Air-pressure dataset, varying the sampling rate",
        cells,
        algorithms: AlgorithmKind::PAPER_SET.to_vec(),
        skip: vec![],
    }
}

/// §6 extension: message loss and the induced rank error.
pub fn loss(quick: bool) -> Sweep {
    let b = base(quick);
    let ps: &[f64] = &[0.0, 0.02, 0.05, 0.1, 0.2];
    let cells = ps
        .iter()
        .map(|&p| Cell {
            label: format!("loss={:.0}%", p * 100.0),
            config: SimulationConfig {
                loss: (p > 0.0).then_some(p),
                ..b.clone()
            },
        })
        .collect();
    Sweep {
        id: "loss",
        title: "Ext. — Message loss vs. rank error (§6 future work)",
        cells,
        algorithms: vec![
            AlgorithmKind::Pos,
            AlgorithmKind::Hbc,
            AlgorithmKind::Iq,
            AlgorithmKind::LcllH,
            AlgorithmKind::LcllR,
        ],
        skip: vec![],
    }
}

/// ext-reliability: the §6 reliability ladder at a fixed 30 % loss rate —
/// from raw fire-and-forget, through growing ARQ budgets, to ARQ plus
/// end-to-end wave recovery, and finally loss combined with crash-stop node
/// failures. Shows how much exactness each reliability mechanism buys back
/// and what it costs in retransmission energy.
pub fn reliability(quick: bool) -> Sweep {
    use wsn_net::ReliabilityConfig;
    let b = base(quick);
    let p = 0.3;
    let cells = vec![
        Cell {
            label: "raw loss".into(),
            config: SimulationConfig {
                loss: Some(p),
                ..b.clone()
            },
        },
        Cell {
            label: "arq=1".into(),
            config: SimulationConfig {
                loss: Some(p),
                reliability: ReliabilityConfig::arq(1),
                ..b.clone()
            },
        },
        Cell {
            label: "arq=3".into(),
            config: SimulationConfig {
                loss: Some(p),
                reliability: ReliabilityConfig::arq(3),
                ..b.clone()
            },
        },
        Cell {
            label: "arq=3+rec".into(),
            config: SimulationConfig {
                loss: Some(p),
                reliability: ReliabilityConfig::recovering(3, 4),
                ..b.clone()
            },
        },
        Cell {
            label: "+failures".into(),
            config: SimulationConfig {
                loss: Some(p),
                reliability: ReliabilityConfig::recovering(3, 4),
                node_failure: Some(0.002),
                ..b.clone()
            },
        },
    ];
    Sweep {
        id: "reliability",
        title: "Ext. — Reliability ladder at 30 % loss (ARQ / recovery / failures)",
        cells,
        algorithms: vec![
            AlgorithmKind::Pos,
            AlgorithmKind::Hbc,
            AlgorithmKind::Iq,
            AlgorithmKind::LcllH,
        ],
        skip: vec![],
    }
}

/// §4.2 extension: adaptive HBC↔IQ switching across temporal-correlation
/// regimes.
pub fn adaptive(quick: bool) -> Sweep {
    let b = base(quick);
    let periods: &[u32] = &[250, 63, 8];
    let cells = periods
        .iter()
        .map(|&p| Cell {
            label: format!("τ={p}"),
            config: SimulationConfig {
                dataset: DatasetSpec::Synthetic(SyntheticConfig {
                    period: p,
                    ..synthetic(&b)
                }),
                ..b.clone()
            },
        })
        .collect();
    Sweep {
        id: "adaptive",
        title: "Ext. — Adaptive switching vs. fixed HBC/IQ (§4.2 future work)",
        cells,
        algorithms: vec![
            AlgorithmKind::Hbc,
            AlgorithmKind::HbcNb,
            AlgorithmKind::Iq,
            AlgorithmKind::Adaptive,
        ],
        skip: vec![],
    }
}

/// Reconstruction-sensitivity sweep: the three LCLL readings (DESIGN.md
/// §3.4) across temporal correlation regimes and both Fig.-10 range
/// settings. Quantifies how much the under-specified baseline's behaviour
/// depends on the reconstruction chosen.
pub fn lcllcmp(quick: bool) -> Sweep {
    let b = base(quick);
    let mut cells: Vec<Cell> = [250u32, 32, 8]
        .iter()
        .map(|&p| Cell {
            label: format!("τ={p}"),
            config: SimulationConfig {
                dataset: DatasetSpec::Synthetic(SyntheticConfig {
                    period: p,
                    ..synthetic(&b)
                }),
                ..b.clone()
            },
        })
        .collect();
    let (sensors, rounds) = if quick { (150, 60) } else { (1022, 250) };
    for (range, tag) in [
        (RangeSetting::Optimistic, "opt"),
        (RangeSetting::Pessimistic, "pess"),
    ] {
        cells.push(Cell {
            label: format!("pressure ({tag})"),
            config: SimulationConfig {
                rounds,
                dataset: DatasetSpec::Pressure(PressureConfig {
                    sensor_count: sensors,
                    steps: rounds as usize * 4 + 1,
                    skip: 4,
                    range,
                    ..PressureConfig::default()
                }),
                ..b.clone()
            },
        });
    }
    Sweep {
        id: "lcllcmp",
        title: "Ext. — LCLL reconstruction sensitivity (H vs S vs R)",
        cells,
        algorithms: vec![
            AlgorithmKind::LcllH,
            AlgorithmKind::LcllS,
            AlgorithmKind::LcllR,
        ],
        skip: vec![],
    }
}

/// Extension sweep: the exact methods of §3.1 head-to-head across |N| —
/// TAG (O(|N|) collection), GK (summary-based, sublinear per node), and
/// the continuous protocols that exploit temporal correlation.
pub fn exactcmp(quick: bool) -> Sweep {
    let b = base(quick);
    let ns: &[usize] = if quick {
        &[60, 150, 300]
    } else {
        &[250, 500, 1000, 2000]
    };
    let cells = ns
        .iter()
        .map(|&n| Cell {
            label: format!("|N|={n}"),
            config: SimulationConfig {
                sensor_count: n,
                ..b.clone()
            },
        })
        .collect();
    Sweep {
        id: "exactcmp",
        title: "Ext. — Exact methods of §3.1 (snapshot vs continuous)",
        cells,
        algorithms: vec![
            AlgorithmKind::Tag,
            AlgorithmKind::Gk,
            AlgorithmKind::Pos,
            AlgorithmKind::Hbc,
            AlgorithmKind::Iq,
        ],
        skip: vec![],
    }
}

/// Extension sweep: varying the quantile parameter φ. Definition 2.1's
/// algorithms are rank-independent; the *costs* are not — TAG forwards
/// `k` values per node, and skewed quantiles sit in sparser value regions.
pub fn phi(quick: bool) -> Sweep {
    let b = base(quick);
    let phis: &[f64] = &[0.05, 0.25, 0.5, 0.75, 0.95];
    let cells = phis
        .iter()
        .map(|&phi| Cell {
            label: format!("φ={phi}"),
            config: SimulationConfig { phi, ..b.clone() },
        })
        .collect();
    Sweep {
        id: "phi",
        title: "Ext. — Varying the quantile parameter φ (Definition 2.1)",
        cells,
        algorithms: AlgorithmKind::PAPER_SET.to_vec(),
        skip: vec![],
    }
}

/// Extension sweep: the approximate-sketch family (q-digest, GK sink
/// summary) against the exact continuous protocols across network sizes —
/// the energy/accuracy frontier. The sketches trade a certified `⌊ε·n⌋`
/// rank tolerance for traffic; the exact set pins the zero-error end of
/// the frontier.
pub fn sketch(quick: bool) -> Sweep {
    let b = base(quick);
    let ns: &[usize] = if quick {
        &[60, 150, 300]
    } else {
        &[250, 500, 1000, 2000]
    };
    let cells = ns
        .iter()
        .map(|&n| Cell {
            label: format!("|N|={n}"),
            config: SimulationConfig {
                sensor_count: n,
                ..b.clone()
            },
        })
        .collect();
    Sweep {
        id: "sketch",
        title: "Ext. — Approximate sketches (ε=0.1) vs exact continuous",
        cells,
        algorithms: vec![
            AlgorithmKind::Hbc,
            AlgorithmKind::Iq,
            AlgorithmKind::QDigest { eps_milli: 100 },
            AlgorithmKind::GkSink {
                eps_milli: 100,
                capacity: 0,
            },
        ],
        skip: vec![],
    }
}

/// Extension sweep: dynamic worlds (DESIGN.md §3.3k) — waypoint mobility,
/// churn, link drift and duty-cycled radios against the static baseline.
/// Every dynamic cell forces routing-tree rebuilds whose beacon traffic is
/// charged under [`wsn_net::Phase::Rebuild`]; the indicators show what
/// each dynamic process costs the hotspot and the lifetime.
pub fn dynamics(quick: bool) -> Sweep {
    use crate::config::DynamicsConfig;
    let b = base(quick);
    // A quarter radio range per 4-round epoch: links change, the world
    // stays connected often enough to be interesting.
    let step = b.radio_range * 0.25;
    let moving = DynamicsConfig {
        mobility_step: step,
        epoch: 4,
        ..DynamicsConfig::default()
    };
    let with = |d: DynamicsConfig| SimulationConfig {
        dynamics: Some(d),
        ..b.clone()
    };
    let cells = vec![
        Cell {
            label: "static".into(),
            config: b.clone(),
        },
        Cell {
            label: "mobility".into(),
            config: with(moving),
        },
        Cell {
            label: "churn 1%".into(),
            config: with(DynamicsConfig {
                churn: 0.01,
                ..DynamicsConfig::default()
            }),
        },
        Cell {
            label: "mob+churn".into(),
            config: with(DynamicsConfig {
                churn: 0.01,
                ..moving
            }),
        },
        Cell {
            label: "+drift".into(),
            config: SimulationConfig {
                loss: Some(0.1),
                dynamics: Some(DynamicsConfig {
                    churn: 0.01,
                    drift: 0.1,
                    ..moving
                }),
                ..b.clone()
            },
        },
        Cell {
            label: "+duty 10%".into(),
            config: with(DynamicsConfig {
                churn: 0.01,
                duty_milli: 100,
                ..moving
            }),
        },
    ];
    Sweep {
        id: "dynamics",
        title: "Ext. — Dynamic worlds (mobility, churn, drift, duty cycle)",
        cells,
        algorithms: vec![
            AlgorithmKind::Pos,
            AlgorithmKind::Hbc,
            AlgorithmKind::Iq,
            AlgorithmKind::LcllH,
        ],
        skip: vec![],
    }
}

/// One ablation row: a label and its aggregated metrics.
pub type AblationRow = (String, AggregatedMetrics);

/// Ablation A: HBC bucket count — does the Lambert-W cost model actually
/// pick a good `b`? Sweeps fixed bucket counts against the model's choice
/// on the default workload (DESIGN.md calls this out as the design choice
/// to validate).
pub fn ablation_buckets(quick: bool) -> Vec<AblationRow> {
    use cqp_core::hbc::{Hbc, HbcConfig};
    let cfg = base(quick);
    let b_opt = cqp_core::cost_model::optimal_buckets(&cfg.sizes, 1024);
    let mut rows = Vec::new();
    for b in [2usize, 4, b_opt, 16, 32, 64] {
        let m = crate::runner::run_experiment_with(&cfg, &move |q, s| {
            Box::new(Hbc::new(
                q,
                HbcConfig {
                    buckets: Some(b),
                    // Isolate the search strategy from the retrieval
                    // shortcut.
                    direct_retrieval: false,
                    ..HbcConfig::default()
                },
                s,
            ))
        });
        let tag = if b == b_opt { " (cost model)" } else { "" };
        rows.push((format!("b={b}{tag}"), m));
    }
    rows
}

/// Ablation B: IQ's knobs — hint usage, history window `m`, and the two
/// Ξ initializers of §4.2.1.
pub fn ablation_iq(quick: bool) -> Vec<AblationRow> {
    use cqp_core::iq::{Iq, IqConfig, XiInit};
    let cfg = base(quick);
    let variants: Vec<(String, IqConfig)> = vec![
        ("default (m=4, hints, mean-gap)".into(), IqConfig::default()),
        (
            "no hints".into(),
            IqConfig {
                use_hints: false,
                ..IqConfig::default()
            },
        ),
        (
            "m=2".into(),
            IqConfig {
                m: 2,
                ..IqConfig::default()
            },
        ),
        (
            "m=8".into(),
            IqConfig {
                m: 8,
                ..IqConfig::default()
            },
        ),
        (
            "median-gap init".into(),
            IqConfig {
                xi_init: XiInit::MedianGap,
                ..IqConfig::default()
            },
        ),
    ];
    variants
        .into_iter()
        .map(|(label, iq_cfg)| {
            let m =
                crate::runner::run_experiment_with(&cfg, &move |q, _| Box::new(Iq::new(q, iq_cfg)));
            (label, m)
        })
        .collect()
}

/// Ablation C: the \[21\] improvements — direct value retrieval on/off for
/// POS, HBC and LCLL-H.
pub fn ablation_retrieval(quick: bool) -> Vec<AblationRow> {
    use cqp_core::hbc::{Hbc, HbcConfig};
    use cqp_core::lcll::{Lcll, RefiningStrategy};
    use cqp_core::Pos;
    let cfg = base(quick);
    let mut rows: Vec<AblationRow> = Vec::new();
    rows.push((
        "POS +retrieval".into(),
        crate::runner::run_experiment_with(&cfg, &|q, _| Box::new(Pos::new(q))),
    ));
    rows.push((
        "POS -retrieval".into(),
        crate::runner::run_experiment_with(&cfg, &|q, _| {
            Box::new(Pos::new(q).without_direct_retrieval())
        }),
    ));
    rows.push((
        "HBC +retrieval".into(),
        crate::runner::run_experiment_with(&cfg, &|q, s| {
            Box::new(Hbc::new(q, HbcConfig::default(), s))
        }),
    ));
    rows.push((
        "HBC -retrieval".into(),
        crate::runner::run_experiment_with(&cfg, &|q, s| {
            Box::new(Hbc::new(
                q,
                HbcConfig {
                    direct_retrieval: false,
                    ..HbcConfig::default()
                },
                s,
            ))
        }),
    ));
    rows.push((
        "LCLL-H +retrieval".into(),
        crate::runner::run_experiment_with(&cfg, &|q, s| {
            Box::new(Lcll::new(q, RefiningStrategy::Hierarchical, s))
        }),
    ));
    rows.push((
        "LCLL-H -retrieval".into(),
        crate::runner::run_experiment_with(&cfg, &|q, s| {
            Box::new(Lcll::new(q, RefiningStrategy::Hierarchical, s).without_direct_retrieval())
        }),
    ));
    rows
}

/// Ablation D: initialization strategy — TAG full collection vs. the
/// `b`-ary snapshot search of \[21\] (§3.2/§4.2.1 allow either). Measured on
/// a single round so only the init cost shows.
pub fn ablation_init(quick: bool) -> Vec<AblationRow> {
    use cqp_core::init::InitStrategy;
    use cqp_core::iq::{Iq, IqConfig};
    let mut cfg = base(quick);
    cfg.rounds = 1;
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("IQ, TAG init (full collection)", InitStrategy::Tag),
        ("IQ, b-ary snapshot init [21]", InitStrategy::BarySearch),
    ] {
        let m = crate::runner::run_experiment_with(&cfg, &move |q, _| {
            Box::new(Iq::new(
                q,
                IqConfig {
                    init: strategy,
                    ..IqConfig::default()
                },
            ))
        });
        rows.push((label.to_string(), m));
    }
    rows
}

/// Extension: the §3.1 sampling trade-off — run the quantile over a random
/// layer of nodes and measure energy saved vs rank error introduced.
pub fn sampling_tradeoff(quick: bool) -> Vec<AblationRow> {
    use cqp_core::SampledQuantile;
    let cfg = base(quick);
    let n = cfg.sensor_count;
    let mut rows = Vec::new();
    for p in [0.05f64, 0.1, 0.25, 0.5, 1.0] {
        let m = crate::runner::run_experiment_with(&cfg, &move |q, _| {
            Box::new(SampledQuantile::new(q, 0.5, n, p, 0xABCD))
        });
        rows.push((format!("sampled layer p={p}"), m));
    }
    // Reference: the exact continuous protocols on the same workload.
    rows.push((
        "exact IQ (reference)".to_string(),
        crate::runner::run_experiment(&cfg, AlgorithmKind::Iq),
    ));
    rows.push((
        "exact TAG (reference)".to_string(),
        crate::runner::run_experiment(&cfg, AlgorithmKind::Tag),
    ));
    rows
}

/// One row of the multi-query service trade-off table.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Row label.
    pub label: String,
    /// Total bits on air over the whole workload.
    pub bits: u64,
    /// Total data messages (fragments).
    pub messages: u64,
    /// Protocol executions performed (dedup group leaders).
    pub executions: u64,
    /// Query-rounds served (executions plus free riders).
    pub served: u64,
}

/// The continuous-service trade-off (DESIGN.md §3.3i): the standard
/// 16-query mixed-φ / mixed-epoch workload of [`Scenario::workload`] under
/// the shared service — execution dedup plus piggybacked frame packing —
/// against the same service with solo framing, and against the
/// pre-service baseline of answering each query with its own independent
/// network (16 solo runs, summed). The workload answers every query
/// identically in all three columns; only the traffic differs.
///
/// [`Scenario::workload`]: crate::scenario::Scenario::workload
pub fn serve_tradeoff(quick: bool) -> Vec<ServeRow> {
    use crate::scenario::{DataSource, Scenario};
    use crate::service::serve;

    let sc = Scenario {
        seed: 0x5E11CE,
        nodes: if quick { 24 } else { 80 },
        range_milli: 2500,
        rounds: if quick { 8 } else { 48 },
        runs: 1,
        phi_milli: 500,
        loss_milli: 0,
        retries: 0,
        recovery: 0,
        failure_milli: 0,
        eps_milli: 100,
        capacity: 0,
        queries: 16,
        mobility_milli: 0,
        churn_milli: 0,
        drift_milli: 0,
        duty_milli: 0,
        source: DataSource::Sinusoid {
            period: 16,
            noise_permille: 100,
        },
    };
    let cfg = sc.to_config();
    let workload = sc.workload();

    let mut rows = Vec::new();
    for (label, shared) in [
        ("service, shared waves", true),
        ("service, solo framing", false),
    ] {
        let r = serve(&cfg, &workload, &[], shared, 0);
        rows.push(ServeRow {
            label: label.to_string(),
            bits: r.total_bits,
            messages: r.total_messages,
            executions: r.executions,
            served: r.served,
        });
    }
    let mut solo = ServeRow {
        label: "16 independent runs (sum)".to_string(),
        bits: 0,
        messages: 0,
        executions: 0,
        served: 0,
    };
    for q in &workload {
        let r = serve(&cfg, std::slice::from_ref(q), &[], false, 0);
        solo.bits += r.total_bits;
        solo.messages += r.total_messages;
        solo.executions += r.executions;
        solo.served += r.served;
    }
    rows.push(solo);
    rows
}

/// Every sweep behind the evaluation.
pub fn all_sweeps(quick: bool) -> Vec<Sweep> {
    vec![
        fig6(quick),
        fig7(quick),
        fig8(quick),
        fig9(quick),
        fig10(quick),
        loss(quick),
        reliability(quick),
        adaptive(quick),
        phi(quick),
        lcllcmp(quick),
        exactcmp(quick),
        sketch(quick),
        dynamics(quick),
    ]
}

/// Looks a sweep up by id.
pub fn by_id(id: &str, quick: bool) -> Option<Sweep> {
    match id {
        "fig6" => Some(fig6(quick)),
        "fig7" => Some(fig7(quick)),
        "fig8" => Some(fig8(quick)),
        "fig9" => Some(fig9(quick)),
        "fig10" => Some(fig10(quick)),
        "loss" => Some(loss(quick)),
        "reliability" => Some(reliability(quick)),
        "adaptive" => Some(adaptive(quick)),
        "phi" => Some(phi(quick)),
        "lcllcmp" => Some(lcllcmp(quick)),
        "exactcmp" => Some(exactcmp(quick)),
        "sketch" => Some(sketch(quick)),
        "dynamics" => Some(dynamics(quick)),
        _ => None,
    }
}

/// One row of the Figure-4 trace: the evolution of IQ's interval Ξ.
#[derive(Debug, Clone, Copy)]
pub struct XiTraceRow {
    /// Round index.
    pub round: u32,
    /// The exact quantile of the round.
    pub quantile: i64,
    /// Lower end of Ξ (quantile + ξ_l).
    pub xi_lo: i64,
    /// Upper end of Ξ (quantile + ξ_r).
    pub xi_hi: i64,
    /// Smallest measurement in the network.
    pub min: i64,
    /// Largest measurement.
    pub max: i64,
    /// Whether the round needed a refinement (white gaps in Fig. 4).
    pub refined: bool,
}

/// Regenerates Figure 4: IQ's Ξ on a slowly drifting trace over 125
/// rounds. Uses the synthetic generator in a low-noise configuration (the
/// original figure used an air-pressure trace; the visual behaviour —
/// Ξ hugging the quantile, widening on trend changes — is the point).
pub fn fig4_trace(rounds: u32) -> Vec<XiTraceRow> {
    let mut rng = Rng::seed_from_u64(41);
    let positions = wsn_data::placement::uniform(400, 200.0, 200.0, &mut rng);
    let sensor_pos: Vec<(f64, f64)> = positions[1..].to_vec();
    let scfg = SyntheticConfig {
        period: 125,
        noise_percent: 5.0,
        ..SyntheticConfig::default()
    };
    let mut ds = SyntheticDataset::generate(scfg, &sensor_pos, &mut rng);

    let points: Vec<wsn_net::Point> = positions
        .iter()
        .map(|&(x, y)| wsn_net::Point::new(x, y))
        .collect();
    let topo = wsn_net::Topology::build(points, 35.0);
    let tree = wsn_net::RoutingTree::shortest_path_tree(&topo).expect("connected");
    let mut net = wsn_net::Network::new(
        topo,
        tree,
        wsn_net::RadioModel::default(),
        wsn_net::MessageSizes::default(),
    );

    let query = QueryConfig::median(400, ds.range_min(), ds.range_max());
    let mut iq = Iq::new(query, IqConfig::default());
    let mut values = vec![0i64; 400];
    let mut out = Vec::with_capacity(rounds as usize);
    for t in 0..rounds {
        ds.sample_round(t, &mut values);
        let q = iq.round(&mut net, &values);
        let (xl, xr) = iq.xi();
        out.push(XiTraceRow {
            round: t,
            quantile: q,
            xi_lo: q + xl,
            xi_hi: q + xr,
            min: *values.iter().min().expect("non-empty"),
            max: *values.iter().max().expect("non-empty"),
            refined: iq.last_refinements() > 0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_has_a_sweep() {
        let ids: Vec<&str> = all_sweeps(true).iter().map(|s| s.id).collect();
        assert_eq!(
            ids,
            [
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "loss",
                "reliability",
                "adaptive",
                "phi",
                "lcllcmp",
                "exactcmp",
                "sketch",
                "dynamics"
            ]
        );
        for id in ids {
            assert!(by_id(id, true).is_some());
        }
        assert!(by_id("fig99", true).is_none());
    }

    #[test]
    fn fig10_covers_both_range_settings() {
        let s = fig10(true);
        assert_eq!(s.cells.len(), 10);
        assert!(s.cells.iter().any(|c| c.label.contains("opt")));
        assert!(s.cells.iter().any(|c| c.label.contains("pess")));
    }

    #[test]
    fn fig4_trace_tracks_the_quantile() {
        let trace = fig4_trace(30);
        assert_eq!(trace.len(), 30);
        for row in &trace[1..] {
            assert!(row.xi_lo <= row.quantile && row.quantile <= row.xi_hi);
            assert!(row.min <= row.quantile && row.quantile <= row.max);
        }
        // Ξ must not degenerate over the whole trace once a trend exists.
        assert!(trace[5..].iter().any(|r| r.xi_hi > r.xi_lo));
    }

    #[test]
    fn serve_tradeoff_orders_shared_below_independent() {
        let rows = serve_tradeoff(true);
        assert_eq!(rows.len(), 3);
        let (shared, solo_framing, independent) = (&rows[0], &rows[1], &rows[2]);
        // Every column answers the same workload.
        assert_eq!(shared.served, solo_framing.served);
        assert_eq!(shared.executions, solo_framing.executions);
        // Dedup alone halves the executions (the workload is two identical
        // 8-query cycles); frame sharing then only cheapens the bits.
        assert!(solo_framing.executions < independent.executions);
        assert!(shared.bits <= solo_framing.bits);
        assert!(solo_framing.bits < independent.bits);
    }

    #[test]
    fn quick_sweeps_are_runnable_end_to_end() {
        // Smallest sweep: adaptive with trimmed cells.
        let mut s = adaptive(true);
        s.cells.truncate(1);
        for c in &mut s.cells {
            c.config.rounds = 20;
            c.config.runs = 1;
            c.config.sensor_count = 60;
        }
        let r = run_sweep(&s);
        assert_eq!(r.results.len(), s.algorithms.len());
        for row in &r.results {
            for m in row.iter().flatten() {
                assert_eq!(m.exactness, 1.0);
            }
        }
    }
}
