//! Fuzzable scenario descriptions — the bridge between the `wsn-check`
//! scenario fuzzer and [`SimulationConfig`].
//!
//! A [`Scenario`] is a *flat, all-integer* description of one simulated
//! world: topology density, sink placement seed, data source, loss rate,
//! ARQ budget, node-failure schedule and quantile parameter. Keeping every
//! field an integer makes scenarios bit-for-bit reproducible across
//! serialization (no float formatting ambiguity) and gives the shrinker a
//! discrete lattice to walk. Probabilities and the quantile φ are stored in
//! thousandths (`*_milli`), the radio range as a density factor in
//! thousandths of the mean node spacing.

use wsn_data::pressure::{PressureConfig, RangeSetting};
use wsn_data::synthetic::SyntheticConfig;
use wsn_net::ReliabilityConfig;

use crate::config::{AlgorithmKind, DatasetSpec, SimulationConfig};
use crate::runner::AREA;
use crate::service::ServeQuery;

/// Which measurement process drives the scenario. A discrete, integer-only
/// mirror of [`DatasetSpec`] (which holds floats and nested configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// Synthetic sinusoid (§5.1.2): period τ in rounds, noise ψ in
    /// thousandths of the sine amplitude.
    Sinusoid {
        /// Period τ in rounds (≥ 1).
        period: u32,
        /// Noise ψ in permille of the amplitude (Table 2's 0…50 % is
        /// 0…500 here).
        noise_permille: u32,
    },
    /// Per-node bounded random walks over `[0, range_size)`.
    Walk {
        /// Number of values in the universe (≥ 2).
        range_size: u64,
        /// Maximum per-round step (≥ 1).
        step: i64,
    },
    /// Calm-drift / turbulence regime switching.
    Regime {
        /// Number of values in the universe (≥ 2).
        range_size: u64,
        /// Rounds per regime phase (≥ 1).
        phase_len: u32,
        /// Per-round drift during calm phases.
        drift: i64,
    },
    /// Barometric-pressure trace slices (§5.1.3), SOM placement.
    Pressure {
        /// Sampling stride (round `t` reads raw step `t·skip`).
        skip: u32,
        /// `true` = pessimistic range scaling, `false` = optimistic.
        pessimistic: bool,
    },
}

impl DataSource {
    /// Short stable name used by repro lines and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            DataSource::Sinusoid { .. } => "sinusoid",
            DataSource::Walk { .. } => "walk",
            DataSource::Regime { .. } => "regime",
            DataSource::Pressure { .. } => "pressure",
        }
    }
}

/// One fully-described fuzz scenario. See the module docs for the integer
/// encoding conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Master seed: drives placement (sink included), dataset generation,
    /// loss/failure schedules — everything stochastic.
    pub seed: u64,
    /// Number of sensor nodes (≥ 1; the sink is always added on top).
    pub nodes: usize,
    /// Radio range as a factor of the mean node spacing
    /// `AREA / sqrt(nodes + 1)`, in thousandths (2000 = 2×spacing).
    pub range_milli: u32,
    /// Rounds per run (≥ 1).
    pub rounds: u32,
    /// Simulation runs (topology re-drawn between runs, ≥ 1).
    pub runs: u32,
    /// Quantile parameter φ in thousandths, clamped to `[0, 1000]` —
    /// the boundaries are legal: φ = 0 targets rank 1 (the minimum) and
    /// φ = 1 targets rank n (the maximum).
    pub phi_milli: u32,
    /// Bernoulli message-loss probability in thousandths (0 = reliable
    /// links, 1000 = every frame lost).
    pub loss_milli: u32,
    /// ARQ retransmission budget per data frame.
    pub retries: u32,
    /// End-to-end wave-recovery passes.
    pub recovery: u32,
    /// Per-round crash-stop node-failure probability in thousandths.
    pub failure_milli: u32,
    /// Sketch-family rank tolerance ε in thousandths (used by the QD/GKS
    /// battery members; the exact battery ignores it). 100 = the default
    /// 10 % rank error.
    pub eps_milli: u32,
    /// GKS summary capacity override in entries; 0 derives the capacity
    /// from the configured maximum payload size.
    pub capacity: u32,
    /// Concurrent continuous queries for serve-mode invariants (1 = the
    /// classic single-query world; the multi-query workload is derived
    /// deterministically by [`Scenario::workload`]).
    pub queries: u32,
    /// Waypoint-mobility speed in thousandths of the radio range per
    /// mobility epoch (0 = static placement, 1000 = a full radio range
    /// per epoch). Scenarios use a fixed epoch of
    /// [`Scenario::MOBILITY_EPOCH`] rounds.
    pub mobility_milli: u32,
    /// Per-round churn probability in thousandths (sensors toggle between
    /// departed and joined; 0 = fixed population).
    pub churn_milli: u32,
    /// Link-drift amplitude in thousandths: the loss probability
    /// random-walks within `loss ± drift`. Without link loss
    /// (`loss_milli == 0`) there is no loss process to drive and drift is
    /// inert by definition.
    pub drift_milli: u32,
    /// Duty-cycle listen fraction in per-mille: idle-listen joules charged
    /// to every live sensor each round (0 = no idle radio).
    pub duty_milli: u32,
    /// The measurement process.
    pub source: DataSource,
}

impl Scenario {
    /// The quantile parameter φ as a float in `[0, 1]`. The closed
    /// boundaries map to the extreme order statistics: `0` → rank 1,
    /// `1000` → rank n ([`cqp_core::rank::rank_of_phi`] pins the clamp).
    pub fn phi(&self) -> f64 {
        self.phi_milli.min(1000) as f64 / 1000.0
    }

    /// The deterministic multi-query workload of this scenario:
    /// `queries` entries cycling through the full 8-protocol battery with
    /// mixed φ (boundaries included) and mixed epochs, so a 16-query
    /// workload covers every protocol twice — duplicated specs exercise
    /// the service layer's dedup path.
    pub fn workload(&self) -> Vec<ServeQuery> {
        let battery = AlgorithmKind::battery(self.eps_milli, self.capacity);
        let phi = self.phi_milli.min(1000);
        (0..self.queries.max(1))
            .map(|j| {
                let m = (j % 8) as usize;
                ServeQuery {
                    algorithm: battery[m],
                    phi_milli: [phi, 0, 1000, 250, 750, (phi * 3) % 1001, 900, 100][m],
                    epoch: [1, 1, 2, 3, 1, 2, 4, 1][m],
                }
            })
            .collect()
    }

    /// The radio range in meters: `range_milli/1000 ×` the mean node
    /// spacing of a uniform placement, capped at the deployment diagonal
    /// (beyond which every node hears every other).
    pub fn radio_range(&self) -> f64 {
        let spacing = AREA / ((self.nodes + 1) as f64).sqrt();
        let range = self.range_milli as f64 / 1000.0 * spacing;
        range.min(AREA * std::f64::consts::SQRT_2)
    }

    /// Rounds per mobility epoch in scenario-driven worlds: positions
    /// advance and the disk graph re-derives every 4 rounds.
    pub const MOBILITY_EPOCH: u32 = 4;

    /// True iff the scenario guarantees that every sensor's measurement
    /// reaches the sink every round: no link loss, no node failures, no
    /// churn and no mobility. Only then must every protocol answer exactly
    /// (the paper's operating assumption). Churn and mobility can orphan
    /// or remove contributors mid-stream, so those worlds check the
    /// accounting/termination invariants instead; drift is inert without
    /// loss, and a duty-cycled radio only spends idle joules — neither
    /// weakens exactness.
    pub fn is_reliable_world(&self) -> bool {
        self.loss_milli == 0
            && self.failure_milli == 0
            && self.churn_milli == 0
            && self.mobility_milli == 0
    }

    /// True iff any dynamic-world process is active.
    pub fn is_dynamic_world(&self) -> bool {
        self.mobility_milli > 0
            || self.churn_milli > 0
            || self.drift_milli > 0
            || self.duty_milli > 0
    }

    /// Expands the scenario into a full [`SimulationConfig`]. The audit
    /// layer is always enabled — every fuzz invariant battery replays the
    /// transmission log through the energy auditor.
    pub fn to_config(&self) -> SimulationConfig {
        let dataset = match self.source {
            DataSource::Sinusoid {
                period,
                noise_permille,
            } => DatasetSpec::Synthetic(SyntheticConfig {
                period: period.max(1),
                noise_percent: noise_permille as f64 / 10.0,
                ..SyntheticConfig::default()
            }),
            DataSource::Walk { range_size, step } => DatasetSpec::RandomWalk {
                range_size: range_size.max(2),
                step: step.max(1),
            },
            DataSource::Regime {
                range_size,
                phase_len,
                drift,
            } => DatasetSpec::Regime {
                range_size: range_size.max(2),
                phase_len: phase_len.max(1),
                drift,
            },
            DataSource::Pressure { skip, pessimistic } => {
                let skip = skip.max(1);
                DatasetSpec::Pressure(PressureConfig {
                    sensor_count: self.nodes,
                    steps: self.rounds as usize * skip as usize + 1,
                    skip,
                    range: if pessimistic {
                        RangeSetting::Pessimistic
                    } else {
                        RangeSetting::Optimistic
                    },
                    ..PressureConfig::default()
                })
            }
        };
        SimulationConfig {
            sensor_count: self.nodes,
            radio_range: self.radio_range(),
            rounds: self.rounds,
            runs: self.runs,
            phi: self.phi(),
            seed: self.seed,
            loss: if self.loss_milli == 0 {
                None
            } else {
                Some((self.loss_milli.min(1000)) as f64 / 1000.0)
            },
            reliability: ReliabilityConfig::recovering(self.retries, self.recovery),
            node_failure: if self.failure_milli == 0 {
                None
            } else {
                Some((self.failure_milli.min(1000)) as f64 / 1000.0)
            },
            dynamics: if !self.is_dynamic_world() {
                None
            } else {
                Some(crate::config::DynamicsConfig {
                    mobility_step: self.mobility_milli.min(1000) as f64 / 1000.0
                        * self.radio_range(),
                    churn: self.churn_milli.min(1000) as f64 / 1000.0,
                    drift: self.drift_milli.min(1000) as f64 / 1000.0,
                    duty_milli: self.duty_milli.min(1000),
                    epoch: Self::MOBILITY_EPOCH,
                })
            },
            audit: true,
            ..SimulationConfig::default()
        }
        .with_dataset(dataset)
    }
}

impl SimulationConfig {
    /// Replaces the dataset (builder-style helper for scenario expansion
    /// and sweeps).
    pub fn with_dataset(mut self, dataset: DatasetSpec) -> Self {
        self.dataset = dataset;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Scenario {
        Scenario {
            seed: 7,
            nodes: 20,
            range_milli: 2500,
            rounds: 8,
            runs: 1,
            phi_milli: 500,
            loss_milli: 0,
            retries: 0,
            recovery: 0,
            failure_milli: 0,
            eps_milli: 100,
            capacity: 0,
            queries: 1,
            mobility_milli: 0,
            churn_milli: 0,
            drift_milli: 0,
            duty_milli: 0,
            source: DataSource::Sinusoid {
                period: 32,
                noise_permille: 100,
            },
        }
    }

    #[test]
    fn expansion_mirrors_the_scenario() {
        let cfg = base().to_config();
        assert_eq!(cfg.sensor_count, 20);
        assert_eq!(cfg.rounds, 8);
        assert_eq!(cfg.runs, 1);
        assert_eq!(cfg.phi, 0.5);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.loss.is_none());
        assert!(cfg.node_failure.is_none());
        assert!(cfg.audit, "fuzz batteries always audit");
        match cfg.dataset {
            DatasetSpec::Synthetic(s) => {
                assert_eq!(s.period, 32);
                assert_eq!(s.noise_percent, 10.0);
            }
            other => panic!("wrong dataset {other:?}"),
        }
    }

    #[test]
    fn probabilities_convert_from_milli() {
        let s = Scenario {
            loss_milli: 250,
            failure_milli: 10,
            ..base()
        };
        let cfg = s.to_config();
        assert_eq!(cfg.loss, Some(0.25));
        assert_eq!(cfg.node_failure, Some(0.01));
        assert!(!s.is_reliable_world());
        assert!(base().is_reliable_world());
    }

    #[test]
    fn radio_range_scales_with_density() {
        let sparse = Scenario {
            nodes: 40,
            ..base()
        };
        let dense = Scenario { nodes: 3, ..base() };
        assert!(dense.radio_range() > sparse.radio_range());
        // A single sensor always ends up fully connected.
        let single = Scenario {
            nodes: 1,
            range_milli: 2000,
            ..base()
        };
        assert!(single.radio_range() > AREA);
    }

    #[test]
    fn pressure_slices_cover_the_requested_rounds() {
        let s = Scenario {
            source: DataSource::Pressure {
                skip: 3,
                pessimistic: true,
            },
            ..base()
        };
        match s.to_config().dataset {
            DatasetSpec::Pressure(p) => {
                assert_eq!(p.sensor_count, 20);
                assert_eq!(p.skip, 3);
                assert!(p.steps >= 8 * 3);
                assert_eq!(p.range, RangeSetting::Pessimistic);
            }
            other => panic!("wrong dataset {other:?}"),
        }
    }

    #[test]
    fn phi_boundaries_are_legal_and_out_of_range_clamps() {
        // φ = 0 and φ = 1 are valid quantile parameters (rank 1 / rank n)
        // and must survive the conversion untouched.
        assert_eq!(
            Scenario {
                phi_milli: 0,
                ..base()
            }
            .phi(),
            0.0
        );
        assert_eq!(
            Scenario {
                phi_milli: 1000,
                ..base()
            }
            .phi(),
            1.0
        );
        // Out-of-range encodings clamp to the maximum, not past it.
        assert_eq!(
            Scenario {
                phi_milli: 5000,
                ..base()
            }
            .phi(),
            1.0
        );
    }

    #[test]
    fn dynamics_expand_from_milli_knobs() {
        let s = Scenario {
            mobility_milli: 250,
            churn_milli: 10,
            drift_milli: 400,
            duty_milli: 100,
            loss_milli: 200,
            ..base()
        };
        assert!(s.is_dynamic_world());
        assert!(!s.is_reliable_world());
        let d = s.to_config().dynamics.expect("dynamic world");
        assert!((d.mobility_step - 0.25 * s.radio_range()).abs() < 1e-12);
        assert_eq!(d.churn, 0.01);
        assert_eq!(d.drift, 0.4);
        assert_eq!(d.duty_milli, 100);
        assert_eq!(d.epoch, Scenario::MOBILITY_EPOCH);
        // The static scenario expands to no dynamics at all.
        assert!(!base().is_dynamic_world());
        assert!(base().to_config().dynamics.is_none());
        // Drift without loss is inert, and duty only spends idle joules:
        // neither demotes the world from the exactness bar.
        assert!(Scenario {
            drift_milli: 500,
            duty_milli: 300,
            ..base()
        }
        .is_reliable_world());
        // Churn and mobility do demote it.
        assert!(!Scenario {
            churn_milli: 5,
            ..base()
        }
        .is_reliable_world());
        assert!(!Scenario {
            mobility_milli: 100,
            ..base()
        }
        .is_reliable_world());
    }

    #[test]
    fn workload_cycles_protocols_phis_and_epochs() {
        let s = Scenario {
            queries: 16,
            ..base()
        };
        let w = s.workload();
        assert_eq!(w.len(), 16);
        // Two full battery cycles: entry j and j+8 are identical specs,
        // which is exactly what exercises the dedup path.
        for j in 0..8 {
            assert_eq!(w[j], w[j + 8]);
        }
        // The boundary φ values are in the workload by construction.
        assert!(w.iter().any(|q| q.phi_milli == 0));
        assert!(w.iter().any(|q| q.phi_milli == 1000));
        // Mixed epochs, including every-round queries.
        assert!(w.iter().any(|q| q.epoch == 1));
        assert!(w.iter().any(|q| q.epoch > 1));
        // All 8 protocols appear.
        let names: std::collections::BTreeSet<&str> =
            w.iter().map(|q| q.algorithm.name()).collect();
        assert_eq!(names.len(), 8);
        // queries = 0 degrades to a single-query workload.
        assert_eq!(
            Scenario {
                queries: 0,
                ..base()
            }
            .workload()
            .len(),
            1
        );
    }
}
