#![warn(missing_docs)]
//! # wsn-sim — simulation runner for continuous quantile queries
//!
//! Reproduces the evaluation methodology of §5.1: given a configuration
//! (node count, radio range, dataset, algorithm), it builds the physical
//! topology and shortest-path routing tree, replays the dataset round by
//! round through the chosen protocol, verifies every answer against a
//! centralized oracle, and reports the paper's performance indicators —
//! maximum per-node energy consumption and network lifetime — averaged
//! over rounds and simulation runs.
//!
//! * [`config`] — simulation parameters (Table 2 defaults),
//! * [`dynamics`] — mobility, churn, link drift and duty-cycled radios,
//! * [`runner`] — a single run and multi-run aggregation,
//! * [`metrics`] — the measured indicators,
//! * [`experiments`] — the pre-configured sweeps behind every figure,
//! * [`parallel`] — the deterministic std-only worker pool behind them,
//! * [`parity`] — byte-exact engine digests for the refactor-parity suite,
//! * [`trace`] — per-round instrumentation with CSV export,
//! * [`multi`] — the §2 multi-measurement-node expansion,
//! * [`scenario`] — flat integer scenario descriptions (the `wsn-check`
//!   fuzzer's input language) and their expansion into configurations,
//! * [`report`] — plain-text table rendering.

pub mod config;
pub mod dynamics;
pub mod experiments;
pub mod metrics;
pub mod multi;
pub mod parallel;
pub mod parity;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod service;
pub mod trace;

pub use config::{AlgorithmKind, DatasetSpec, DynamicsConfig, SimulationConfig};
pub use metrics::{AggregatedMetrics, RunMetrics};
pub use runner::{run_experiment, run_experiment_threads, run_once};
pub use scenario::{DataSource, Scenario};
pub use service::{
    serve, serve_capture, serve_monitored, QueryReport, ServeEvent, ServeQuery, ServeReport,
};

/// A sensor measurement.
pub type Value = wsn_net::Value;
