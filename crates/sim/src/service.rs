//! The multi-query continuous service runner: executes a *workload* of
//! concurrent continuous quantile queries over one shared network.
//!
//! The paper's runner ([`crate::runner`]) drives a single query; this
//! module drives many — each `{φ, epoch, algorithm}` query registers into
//! a [`cqp_core::Service`] slot (which doubles as its audit *lane*), the
//! planner compiles the due set of every round into a traffic plan, and
//! the runner executes the plan's groups in deterministic slot order.
//! Multi-query optimization happens at two levels:
//!
//! * **dedup / refinement reuse** — queries with identical
//!   `(algorithm, φ, epoch, admission round)` share one protocol instance:
//!   the group leader executes, followers copy the certified answer at
//!   zero marginal traffic (the degenerate — always-sound — case of
//!   overlapping certified intervals);
//! * **shared frames** — with [`serve`]'s `shared` flag, all waves of one
//!   round pack per-link 802.15.4 frames together
//!   ([`wsn_net::Network::set_shared_frames`]), so each additional due
//!   query pays only its marginal payload bits, not its own headers.
//!
//! Rounds are *held* ([`wsn_net::Network::set_round_hold`]) so every due
//! query executes inside one accounting round; the runner closes each
//! round with `finish_round`, giving one ledger snapshot and one
//! shared-frame window per simulated round regardless of workload size.

use cqp_core::protocol::QueryConfig;
use cqp_core::service::{QuerySpec, Service};
use cqp_core::ContinuousQuantile;
use wsn_data::Rng;
use wsn_net::loss::LossModel;
use wsn_net::obs::{Monitor, MonitorConfig};
use wsn_net::{
    lane_breakdowns, EnergyAuditor, FailureModel, Network, NodeId, Phase, PhaseBreakdown,
};

use crate::config::{AlgorithmKind, SimulationConfig};
use crate::runner::{build_world, rank_error};
use crate::Value;

/// One continuous query of a serve workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeQuery {
    /// Protocol answering the query.
    pub algorithm: AlgorithmKind,
    /// Quantile fraction φ in thousandths (`0` = minimum, `1000` =
    /// maximum).
    pub phi_milli: u32,
    /// Reporting epoch in rounds (due when `round % epoch == 0`; `0` acts
    /// as every round).
    pub epoch: u32,
}

impl ServeQuery {
    /// The quantile parameter φ in `[0, 1]`.
    pub fn phi(&self) -> f64 {
        self.phi_milli.min(1000) as f64 / 1000.0
    }
}

/// A scheduled change to the active query set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeEvent {
    /// Register a query at the start of `round` (before that round's
    /// waves).
    Admit {
        /// Round the query becomes active.
        round: u32,
        /// The query.
        query: ServeQuery,
    },
    /// Retire the query in `slot` at the start of `round`.
    Retire {
        /// Round the retirement takes effect.
        round: u32,
        /// Service slot to vacate (as assigned by admission order —
        /// initial queries take slots `0..k` in order).
        slot: u32,
    },
}

/// Per-query results of a serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// Service slot (= audit lane) the query occupied.
    pub slot: u32,
    /// The query.
    pub query: ServeQuery,
    /// Round the query was admitted.
    pub admitted: u32,
    /// `(round, answer)` for every due round while active — the identity
    /// fuzzers compare against the query's solo run.
    pub answers: Vec<(u32, Value)>,
    /// Due rounds answered exactly (rank error 0 against the oracle).
    pub exact_rounds: u32,
    /// Sum of absolute rank errors over due rounds.
    pub rank_error_sum: u64,
    /// Worst absolute rank error of any due round.
    pub max_rank_error: u64,
    /// Certified rank tolerance (`⌊ε·n⌋` for sketches, 0 exact).
    pub rank_tolerance: u64,
    /// Energy/traffic charged to this query's lane while it was active,
    /// by protocol phase. Followers of a dedup group honestly show zero —
    /// their leader's lane carries the group's traffic.
    pub charges: PhaseBreakdown,
}

impl QueryReport {
    /// Fraction of this query's due rounds answered exactly.
    pub fn exactness(&self) -> f64 {
        if self.answers.is_empty() {
            return 1.0;
        }
        self.exact_rounds as f64 / self.answers.len() as f64
    }
}

/// Results of one serve run: per-query reports plus workload aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// One report per admitted query, in admission order.
    pub queries: Vec<QueryReport>,
    /// Rounds simulated.
    pub rounds: u32,
    /// Total bits on air.
    pub total_bits: u64,
    /// Total data messages (fragments).
    pub total_messages: u64,
    /// Protocol executions performed (group leaders).
    pub executions: u64,
    /// Query-rounds served (executions + free riders).
    pub served: u64,
    /// Traffic-plan cache hits.
    pub plan_hits: u64,
    /// Traffic-plan cache misses (compilations).
    pub plan_misses: u64,
    /// Transmission events replayed by the auditor (0 when not audited).
    pub audit_events: u64,
    /// Auditor discrepancies (must be 0).
    pub audit_discrepancies: u32,
    /// Live per-lane breakdowns, indexed by slot. The replayed
    /// (`lane_breakdowns`) view is asserted bit-identical when auditing.
    pub lanes: Vec<PhaseBreakdown>,
}

/// A stable 64-bit shape id for an [`AlgorithmKind`] — every parameter
/// that affects execution participates, so two queries dedup only when
/// their protocols are interchangeable.
fn algo_shape(kind: &AlgorithmKind) -> u64 {
    let (idx, a, b) = match *kind {
        AlgorithmKind::Tag => (0u64, 0u64, 0u64),
        AlgorithmKind::Pos => (1, 0, 0),
        AlgorithmKind::LcllH => (2, 0, 0),
        AlgorithmKind::LcllS => (3, 0, 0),
        AlgorithmKind::LcllR => (4, 0, 0),
        AlgorithmKind::Hbc => (5, 0, 0),
        AlgorithmKind::HbcNb => (6, 0, 0),
        AlgorithmKind::Iq => (7, 0, 0),
        AlgorithmKind::Adaptive => (8, 0, 0),
        AlgorithmKind::Gk => (9, 0, 0),
        AlgorithmKind::QDigest { eps_milli } => (10, eps_milli as u64, 0),
        AlgorithmKind::GkSink {
            eps_milli,
            capacity,
        } => (11, eps_milli as u64, capacity as u64),
    };
    let mut h = 0xcbf29ce484222325u64;
    for word in [idx, a, b] {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The planner spec of a query admitted at `admit_round`. The admission
/// round is folded into the shape so only queries admitted *together*
/// dedup — a later duplicate starts fresh protocol state and must run its
/// own instance to match its solo run.
fn spec_of(q: &ServeQuery, admit_round: u32) -> QuerySpec {
    QuerySpec {
        algo: algo_shape(&q.algorithm) ^ (admit_round as u64).wrapping_mul(0x9E3779B97F4A7C15),
        phi_milli: q.phi_milli,
        eps_milli: 0,
        epoch: q.epoch,
    }
}

/// A live protocol instance shared by every slot whose spec matches.
struct Instance {
    spec: QuerySpec,
    alg: Box<dyn ContinuousQuantile>,
    /// Answer of the current round, if this instance already executed.
    answer: Option<Value>,
}

struct SlotState {
    query: ServeQuery,
    report_index: usize,
    baseline: PhaseCounters_Baseline,
}

/// Lane-charge snapshot at admission, so slot reuse still yields honest
/// per-query deltas.
#[derive(Clone, Copy, Default)]
#[allow(non_camel_case_types)]
struct PhaseCounters_Baseline {
    messages: [u64; Phase::COUNT],
    bits: [u64; Phase::COUNT],
    joules: [f64; Phase::COUNT],
}

fn baseline_of(b: &PhaseBreakdown) -> PhaseCounters_Baseline {
    PhaseCounters_Baseline {
        messages: b.messages(),
        bits: b.bits(),
        joules: b.joules(),
    }
}

fn delta_of(now: &PhaseBreakdown, base: &PhaseCounters_Baseline) -> PhaseBreakdown {
    let mut out = PhaseBreakdown::default();
    let (msgs, bits, joules) = (now.messages(), now.bits(), now.joules());
    for phase in Phase::ALL {
        let i = phase.index();
        out.charge(
            phase,
            msgs[i] - base.messages[i],
            bits[i] - base.bits[i],
            joules[i] - base.joules[i],
        );
    }
    out
}

/// Runs a serve workload: `initial` queries admitted at round 0 (slots in
/// order), `events` applied at the start of their rounds (in the order
/// given), `shared` enabling frame packing across the round's waves.
/// World construction, seeding and the per-run RNG stream are identical
/// to [`crate::runner::run_once_capture`], so a single-query workload
/// replays exactly the world of a solo run.
pub fn serve(
    cfg: &SimulationConfig,
    initial: &[ServeQuery],
    events: &[ServeEvent],
    shared: bool,
    run_index: u32,
) -> ServeReport {
    serve_capture(cfg, initial, events, shared, run_index).0
}

/// [`serve`] that also hands back the final [`Network`] for parity
/// digests and audits.
pub fn serve_capture(
    cfg: &SimulationConfig,
    initial: &[ServeQuery],
    events: &[ServeEvent],
    shared: bool,
    run_index: u32,
) -> (ServeReport, Network) {
    let (report, _, net) = serve_monitored(cfg, initial, events, shared, run_index, None);
    (report, net)
}

/// [`serve_capture`] with the monitoring plane attached: when
/// `monitor_cfg` is given, a [`Monitor`] rides along the run — queries
/// register on admit, every served answer and every lane's cumulative
/// charges feed the registry, and watchdogs evaluate at each round
/// boundary.
///
/// The monitor is strictly read-only with respect to the engine: it is
/// fed values the runner already computed for its own reports (lane-book
/// deltas, rank errors, plan-cache counters), never consulted for any
/// decision, and never touches the [`Network`]. A monitored run therefore
/// produces the *byte-identical* [`ServeReport`], audit log and digest of
/// an unmonitored one — pinned by `crates/sim/tests/serve.rs` — and,
/// because everything it observes comes from the sequentially-replayed
/// accounting, its health-event stream is itself bit-identical at any
/// `wave_workers` count.
pub fn serve_monitored(
    cfg: &SimulationConfig,
    initial: &[ServeQuery],
    events: &[ServeEvent],
    shared: bool,
    run_index: u32,
    monitor_cfg: Option<&MonitorConfig>,
) -> (ServeReport, Option<Monitor>, Network) {
    let mut rng = Rng::seed_from_u64(
        cfg.seed
            ^ (run_index as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(1),
    );
    let (mut dataset, topo, tree) = build_world(cfg, &mut rng);
    let n = dataset.sensor_count();
    let (range_min, range_max) = (dataset.range_min(), dataset.range_max());

    let mut net = Network::new(topo, tree, cfg.radio, cfg.sizes);
    net.set_audit(cfg.audit);
    net.set_telemetry(cfg.telemetry);
    net.set_wave_workers(cfg.wave_workers);
    if let Some(p) = cfg.loss {
        net.set_loss(Some(LossModel::new(p, rng.next_u64())));
    }
    net.set_reliability(cfg.reliability);
    if let Some(pf) = cfg.node_failure {
        net.set_failures(Some(FailureModel::new(pf, rng.next_u64())));
    }
    // Forked after the gated legacy draws, exactly like the solo runner,
    // so a single-query serve of a dynamic world replays its solo run.
    let mut dynamics = crate::dynamics::init(cfg.dynamics.as_ref(), cfg.loss, &mut net, &mut rng);
    let moving_population = cfg
        .dynamics
        .as_ref()
        .is_some_and(|d| d.churn > 0.0 || d.mobility_step > 0.0);
    net.set_shared_frames(shared);
    net.set_round_hold(true);

    let mut svc = Service::new();
    let mut instances: Vec<Instance> = Vec::new();
    let mut slots: Vec<Option<SlotState>> = Vec::new();
    let mut reports: Vec<QueryReport> = Vec::new();
    let mut monitor: Option<Monitor> = monitor_cfg.map(|c| Monitor::new(*c));

    let admit = |round: u32,
                 q: ServeQuery,
                 svc: &mut Service,
                 instances: &mut Vec<Instance>,
                 slots: &mut Vec<Option<SlotState>>,
                 reports: &mut Vec<QueryReport>,
                 monitor: &mut Option<Monitor>,
                 net: &Network| {
        let spec = spec_of(&q, round);
        let slot = svc.admit(spec);
        if !instances.iter().any(|i| i.spec == spec) {
            let query = QueryConfig::phi(q.phi(), n, range_min, range_max);
            instances.push(Instance {
                spec,
                alg: q.algorithm.build(query, &cfg.sizes),
                answer: None,
            });
        }
        let tolerance = instances
            .iter()
            .find(|i| i.spec == spec)
            .map(|i| i.alg.rank_tolerance(n as u64))
            .unwrap_or(0);
        if slot >= slots.len() {
            slots.resize_with(slot + 1, || None);
        }
        slots[slot] = Some(SlotState {
            query: q,
            report_index: reports.len(),
            baseline: baseline_of(&net.lane_book().get(slot as u32)),
        });
        if let Some(m) = monitor.as_mut() {
            m.register(
                slot as u32,
                round,
                q.algorithm.name(),
                q.phi_milli,
                q.epoch,
                tolerance,
            );
        }
        reports.push(QueryReport {
            slot: slot as u32,
            query: q,
            admitted: round,
            answers: Vec::new(),
            exact_rounds: 0,
            rank_error_sum: 0,
            max_rank_error: 0,
            rank_tolerance: tolerance,
            charges: PhaseBreakdown::default(),
        });
    };

    for &q in initial {
        admit(
            0,
            q,
            &mut svc,
            &mut instances,
            &mut slots,
            &mut reports,
            &mut monitor,
            &net,
        );
    }

    let mut values = vec![0 as Value; n];
    let mut reachable: Vec<Value> = Vec::new();
    let mut executions = 0u64;
    let mut served = 0u64;

    for t in 0..cfg.rounds {
        for ev in events.iter().filter(|e| match e {
            ServeEvent::Admit { round, .. } | ServeEvent::Retire { round, .. } => *round == t,
        }) {
            match *ev {
                ServeEvent::Admit { query, .. } => {
                    admit(
                        t,
                        query,
                        &mut svc,
                        &mut instances,
                        &mut slots,
                        &mut reports,
                        &mut monitor,
                        &net,
                    );
                }
                ServeEvent::Retire { slot, .. } => {
                    let spec = svc.retire(slot as usize);
                    if let Some(state) = slots.get_mut(slot as usize).and_then(Option::take) {
                        let now = net.lane_book().get(slot);
                        reports[state.report_index].charges = delta_of(&now, &state.baseline);
                    }
                    if let Some(m) = monitor.as_mut() {
                        m.retire(slot);
                    }
                    if let Some(spec) = spec {
                        // Drop the instance only when no active slot
                        // still references it (followers keep it alive).
                        let orphaned = !svc.active().any(|(_, s)| *s == spec);
                        if orphaned {
                            instances.retain(|i| i.spec != spec);
                        }
                    }
                }
            }
        }

        net.fail_round();
        if let Some(d) = dynamics.as_mut() {
            if d.apply(t, &mut net) {
                for inst in instances.iter_mut() {
                    inst.alg.topology_changed();
                }
            }
        }
        dataset.sample_round(t, &mut values);
        // Any tree change — failure repair or dynamics rebuild — must
        // invalidate cached traffic plans.
        let rel = net.reliability_stats();
        let plan = svc.plan(t, rel.repairs + rel.rebuilds);

        for inst in instances.iter_mut() {
            inst.answer = None;
        }
        for group in &plan.groups {
            let spec = *svc.get(group.leader).expect("planned slot is active");
            net.set_lane(group.leader as u32);
            let inst = instances
                .iter_mut()
                .find(|i| i.spec == spec)
                .expect("active spec has an instance");
            let answer = inst.alg.round(&mut net, &values);
            inst.answer = Some(answer);
            executions += 1;

            for &slot in std::iter::once(&group.leader).chain(&group.followers) {
                served += 1;
                let Some(state) = slots[slot].as_ref() else {
                    continue;
                };
                let report = &mut reports[state.report_index];
                report.answers.push((t, answer));
                let err = if cfg.node_failure.is_some() {
                    reachable.clear();
                    reachable.extend(
                        (1..=n)
                            .filter(|&i| net.is_reachable(NodeId(i as u32)))
                            .map(|i| values[i - 1]),
                    );
                    let m = reachable.len() as u64;
                    if m == 0 {
                        0
                    } else {
                        let k = (state.query.phi() * m as f64).ceil() as u64;
                        rank_error(&reachable, answer, k.clamp(1, m))
                    }
                } else if moving_population {
                    // Reachable-set oracle with the protocol's own floor
                    // rank convention (see the solo runner).
                    reachable.clear();
                    reachable.extend(
                        (1..=n)
                            .filter(|&i| net.is_reachable(NodeId(i as u32)))
                            .map(|i| values[i - 1]),
                    );
                    if reachable.is_empty() {
                        0
                    } else {
                        let k = cqp_core::rank::rank_of_phi(state.query.phi(), reachable.len());
                        rank_error(&reachable, answer, k)
                    }
                } else {
                    let query = QueryConfig::phi(state.query.phi(), n, range_min, range_max);
                    rank_error(&values, answer, query.k)
                };
                if err == 0 {
                    report.exact_rounds += 1;
                }
                report.rank_error_sum += err;
                report.max_rank_error = report.max_rank_error.max(err);
                if let Some(m) = monitor.as_mut() {
                    m.observe_answer(slot as u32, t, err, slot == group.leader);
                }
            }
        }
        net.finish_round();

        // Round boundary: feed the monitor each active lane's cumulative
        // charges since admission (the same delta the final report uses)
        // and let the watchdogs evaluate. Pure reads — the engine never
        // sees the monitor.
        if let Some(m) = monitor.as_mut() {
            for (slot, entry) in slots.iter().enumerate() {
                if let Some(state) = entry {
                    let delta = delta_of(&net.lane_book().get(slot as u32), &state.baseline);
                    m.observe_lane(
                        slot as u32,
                        delta.total_joules(),
                        delta.bits().iter().sum(),
                        delta.bits()[Phase::Refinement.index()],
                    );
                }
            }
            m.end_round(t, svc.cache().hits, svc.cache().misses);
        }
    }

    // Close out still-active queries' lane deltas.
    for (slot, entry) in slots.iter().enumerate() {
        if let Some(state) = entry {
            let now = net.lane_book().get(slot as u32);
            reports[state.report_index].charges = delta_of(&now, &state.baseline);
        }
    }

    let (audit_events, audit_discrepancies) = if cfg.audit {
        let report = EnergyAuditor::verify(&net);
        debug_assert!(
            report.is_clean(),
            "serve energy audit failed: {:?}",
            report.discrepancies
        );
        // The lane replay must reproduce the live lane book bit-for-bit.
        let live = net.lane_book();
        let replayed = lane_breakdowns(net.audit_log(), live.len());
        debug_assert_eq!(replayed.len(), live.len());
        for (lane, replay) in replayed.iter().enumerate() {
            debug_assert_eq!(
                replay,
                &live.get(lane as u32),
                "lane {lane} replay diverged from live attribution"
            );
        }
        (report.events, report.discrepancies.len() as u32)
    } else {
        (0, 0)
    };

    let stats = net.stats();
    // Cover every admitted slot, not just charged lanes — a follower that
    // free-rode for its whole life still gets an (all-zero) lane.
    let lanes: Vec<PhaseBreakdown> = (0..net.lane_book().len().max(svc.slot_count()))
        .map(|l| net.lane_book().get(l as u32))
        .collect();
    let report = ServeReport {
        queries: reports,
        rounds: cfg.rounds,
        total_bits: stats.bits,
        total_messages: stats.messages,
        executions,
        served,
        plan_hits: svc.cache().hits,
        plan_misses: svc.cache().misses,
        audit_events,
        audit_discrepancies,
        lanes,
    };
    (report, monitor, net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_once_capture;

    fn cfg() -> SimulationConfig {
        SimulationConfig {
            sensor_count: 16,
            radio_range: 70.0,
            rounds: 10,
            runs: 1,
            seed: 0xFEED,
            audit: true,
            ..SimulationConfig::default()
        }
    }

    fn q(kind: AlgorithmKind, phi_milli: u32, epoch: u32) -> ServeQuery {
        ServeQuery {
            algorithm: kind,
            phi_milli,
            epoch,
        }
    }

    #[test]
    fn singleton_workload_matches_the_solo_runner_bit_for_bit() {
        let cfg = cfg();
        let (solo, solo_net) = run_once_capture(&cfg, &|qc, s| AlgorithmKind::Iq.build(qc, s), 0);
        let (serve, serve_net) =
            serve_capture(&cfg, &[q(AlgorithmKind::Iq, 500, 1)], &[], false, 0);
        assert_eq!(serve.queries.len(), 1);
        assert_eq!(serve.queries[0].answers.len(), 10);
        assert_eq!(serve.queries[0].exact_rounds, solo.exact_rounds);
        assert_eq!(serve_net.stats().bits, solo_net.stats().bits);
        assert_eq!(serve_net.stats().messages, solo_net.stats().messages);
        assert_eq!(serve.audit_discrepancies, 0);
    }

    #[test]
    fn duplicate_queries_dedup_to_one_execution() {
        let cfg = cfg();
        let queries = [q(AlgorithmKind::Tag, 500, 1), q(AlgorithmKind::Tag, 500, 1)];
        let (report, _) = serve_capture(&cfg, &queries, &[], false, 0);
        assert_eq!(report.executions, 10, "one execution per round");
        assert_eq!(report.served, 20, "both queries served every round");
        assert_eq!(report.queries[0].answers, report.queries[1].answers);
        // The follower's lane is honestly zero.
        let follower = &report.queries[1].charges;
        assert_eq!(follower.bits().iter().sum::<u64>(), 0);
        // And the workload costs what one query costs.
        let (single, _) = serve_capture(&cfg, &queries[..1], &[], false, 0);
        assert_eq!(report.total_bits, single.total_bits);
    }

    #[test]
    fn epochs_skip_rounds_and_shared_frames_only_cheapen() {
        let cfg = cfg();
        let queries = [
            q(AlgorithmKind::Tag, 500, 1),
            q(AlgorithmKind::Tag, 250, 2),
            q(AlgorithmKind::Iq, 750, 3),
        ];
        let (plain, _) = serve_capture(&cfg, &queries, &[], false, 0);
        assert_eq!(plain.queries[0].answers.len(), 10);
        assert_eq!(plain.queries[1].answers.len(), 5);
        assert_eq!(plain.queries[2].answers.len(), 4); // rounds 0,3,6,9
        let (shared, _) = serve_capture(&cfg, &queries, &[], true, 0);
        assert!(shared.total_bits <= plain.total_bits);
        assert_eq!(shared.audit_discrepancies, 0);
        // Sharing never changes any answer.
        for (a, b) in plain.queries.iter().zip(&shared.queries) {
            assert_eq!(a.answers, b.answers);
        }
        // Plan cache: 3 distinct due shapes (r0-type, odd, even-not-0 ...)
        // — far fewer misses than rounds.
        assert!(shared.plan_misses < 10);
        assert!(shared.plan_hits + shared.plan_misses == 10);
    }

    #[test]
    fn lane_charges_partition_the_global_breakdown() {
        let cfg = cfg();
        let queries = [
            q(AlgorithmKind::Tag, 500, 1),
            q(AlgorithmKind::Iq, 250, 1),
            q(AlgorithmKind::Pos, 900, 2),
        ];
        let (report, net) = serve_capture(&cfg, &queries, &[], true, 0);
        let global = net.phases();
        let lane_bits: u64 = report
            .lanes
            .iter()
            .map(|l| l.bits().iter().sum::<u64>())
            .sum();
        assert_eq!(lane_bits, global.bits().iter().sum::<u64>());
        let lane_msgs: u64 = report
            .lanes
            .iter()
            .map(|l| l.messages().iter().sum::<u64>())
            .sum();
        assert_eq!(lane_msgs, global.messages().iter().sum::<u64>());
        // Every active query's delta-since-admit equals its live lane.
        for qr in &report.queries {
            assert_eq!(&qr.charges, &report.lanes[qr.slot as usize]);
        }
    }

    #[test]
    fn admit_and_retire_take_effect_at_their_rounds() {
        let cfg = cfg();
        let initial = [q(AlgorithmKind::Tag, 500, 1)];
        let events = [
            ServeEvent::Admit {
                round: 3,
                query: q(AlgorithmKind::Iq, 250, 1),
            },
            ServeEvent::Retire { round: 7, slot: 1 },
        ];
        let (report, _) = serve_capture(&cfg, &initial, &events, false, 0);
        assert_eq!(report.queries.len(), 2);
        let transient = &report.queries[1];
        assert_eq!(transient.admitted, 3);
        assert_eq!(
            transient
                .answers
                .iter()
                .map(|&(t, _)| t)
                .collect::<Vec<_>>(),
            vec![3, 4, 5, 6],
            "active rounds 3..7 only"
        );
        // The survivor served every round.
        assert_eq!(report.queries[0].answers.len(), 10);
    }

    #[test]
    fn an_attached_monitor_never_perturbs_the_report() {
        let cfg = cfg();
        let queries = [
            q(AlgorithmKind::Tag, 500, 1),
            q(AlgorithmKind::Iq, 250, 2),
            q(AlgorithmKind::Iq, 250, 2),
        ];
        let (plain, _) = serve_capture(&cfg, &queries, &[], true, 0);
        let strict = MonitorConfig {
            budget_joules: Some(1e-12),
            stale_limit: 1,
            dead_lane_limit: 1,
            cache_window: 1,
            cache_hit_floor_milli: 1000,
            recorder_capacity: 4,
        };
        let (monitored, monitor, _) = serve_monitored(&cfg, &queries, &[], true, 0, Some(&strict));
        assert_eq!(plain, monitored, "monitoring must be invisible");
        let m = monitor.expect("monitor attached");
        assert!(m.is_unhealthy(), "strict thresholds must trip watchdogs");
    }

    #[test]
    fn a_tiny_budget_overruns_on_a_deterministic_round_and_slot() {
        let cfg = cfg();
        let queries = [q(AlgorithmKind::Tag, 500, 1), q(AlgorithmKind::Tag, 500, 1)];
        let mc = MonitorConfig {
            budget_joules: Some(1e-9),
            stale_limit: 0,
            dead_lane_limit: 0,
            cache_window: 0,
            ..MonitorConfig::default()
        };
        let (_, monitor, _) = serve_monitored(&cfg, &queries, &[], false, 0, Some(&mc));
        let m = monitor.expect("monitor attached");
        let overruns: Vec<_> = m
            .events()
            .iter()
            .filter(|e| matches!(e.kind, wsn_net::obs::HealthKind::BudgetOverrun { .. }))
            .collect();
        // The leader's lane carries all the traffic: it overruns in its
        // first round; the follower's lane stays at zero forever.
        assert_eq!(overruns.len(), 1);
        assert_eq!(overruns[0].slot, Some(0));
        assert_eq!(overruns[0].round, 0);
        assert!(m.row(1).unwrap().joules == 0.0, "follower lane is free");
    }

    #[test]
    fn monitor_rows_track_registry_lifecycle() {
        let cfg = cfg();
        let initial = [q(AlgorithmKind::Tag, 500, 1)];
        let events = [
            ServeEvent::Admit {
                round: 3,
                query: q(AlgorithmKind::Iq, 250, 1),
            },
            ServeEvent::Retire { round: 7, slot: 1 },
        ];
        let mc = MonitorConfig::default();
        let (report, monitor, _) = serve_monitored(&cfg, &initial, &events, false, 0, Some(&mc));
        let m = monitor.expect("monitor attached");
        assert_eq!(m.rows().count(), 2);
        let transient = m.row(1).unwrap();
        assert_eq!(transient.admitted, 3);
        assert!(!transient.active, "retired");
        assert_eq!(transient.answers, 4, "due rounds 3..=6");
        let survivor = m.row(0).unwrap();
        assert!(survivor.active);
        assert_eq!(survivor.answers, 10);
        assert_eq!(survivor.staleness, 0);
        assert_eq!(
            survivor.joules,
            report.queries[0].charges.total_joules(),
            "registry mirrors the report's lane delta"
        );
        assert_eq!(m.recorder().len(), 10, "one frame per round");
    }

    #[test]
    fn late_duplicate_does_not_join_the_original_instance() {
        let cfg = cfg();
        let initial = [q(AlgorithmKind::Iq, 500, 1)];
        let events = [ServeEvent::Admit {
            round: 4,
            query: q(AlgorithmKind::Iq, 500, 1),
        }];
        let (report, _) = serve_capture(&cfg, &initial, &events, false, 0);
        // Both run: the late duplicate starts fresh state, so the round-4
        // executions are 2 (no dedup across admission rounds).
        assert_eq!(report.executions, 10 + 6);
    }
}
