//! The performance indicators of §5.1.5, plus the per-phase energy
//! breakdown and audit counters of the transmission-audit layer.

use wsn_net::obs::HistogramSet;
use wsn_net::Phase;

/// Metrics of a single simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Mean per-round energy of the hottest sensor node (J/round) — the
    /// "maximum per-node energy consumption" indicator.
    pub max_node_energy_per_round: f64,
    /// Network lifetime in rounds (until the first sensor exhausts its
    /// 30 mJ supply, extrapolated from per-round means; DESIGN.md §3.3).
    pub lifetime_rounds: f64,
    /// Messages transmitted per round (network-wide).
    pub messages_per_round: f64,
    /// Measurements transmitted per round (each hop counts).
    pub values_per_round: f64,
    /// Bits on air per round.
    pub bits_per_round: f64,
    /// Rounds whose answer equaled the oracle's k-th value.
    pub exact_rounds: u32,
    /// Total rounds executed.
    pub total_rounds: u32,
    /// Mean absolute rank error of the answers (0 when always exact;
    /// meaningful under message loss, §6).
    pub mean_rank_error: f64,
    /// Worst absolute rank error of any round (0 when always exact).
    pub max_rank_error: u64,
    /// Rank error the protocol certifies, `⌊ε·n⌋` for the sketch family
    /// and 0 for the exact battery ([`cqp_core::ContinuousQuantile::rank_tolerance`]).
    pub rank_tolerance: u64,
    /// Receive-energy fraction of the hotspot node (§5.2.1's analysis of
    /// where the energy goes as density grows).
    pub hotspot_rx_fraction: f64,
    /// Fraction of logical payload hops delivered (1.0 on reliable links).
    pub delivery_rate: f64,
    /// ARQ data-frame retransmissions per round (0 without ARQ).
    pub retransmissions_per_round: f64,
    /// Costliest single round of any sensor (J) — the peak the
    /// `max_round_consumption` ledger tracks, as opposed to the per-round
    /// *mean* of the hotspot.
    pub peak_round_energy: f64,
    /// Sensors killed by the crash-stop failure process (0 without one).
    pub failed_nodes: u32,
    /// Routing-tree rebuilds forced by the dynamics layer (mobility
    /// epochs, churn); failure-driven repairs are not counted here.
    pub rebuilds: u32,
    /// Total energy charged per protocol phase (J), indexed by
    /// [`Phase::index`] (init, validation, refinement, recovery, other,
    /// rebuild).
    pub phase_joules: [f64; Phase::COUNT],
    /// Total bits on air per protocol phase, indexed like `phase_joules`.
    pub phase_bits: [u64; Phase::COUNT],
    /// Transmission events replayed by the energy auditor (0 when the run
    /// was not audited).
    pub audit_events: u64,
    /// Ledger/replay mismatches the auditor found (always 0 on a healthy
    /// build; any other value is a conservation bug).
    pub audit_discrepancies: u32,
    /// Network-wide telemetry histograms (message bits, hop depth, ARQ
    /// retries, convergecast fan-in): every node's always-on histograms
    /// merged. Fixed-size (`Copy`), so the run metrics stay plain data.
    pub hists: HistogramSet,
}

impl Default for RunMetrics {
    /// A neutral all-zero run on perfectly reliable links.
    fn default() -> Self {
        RunMetrics {
            max_node_energy_per_round: 0.0,
            lifetime_rounds: 0.0,
            messages_per_round: 0.0,
            values_per_round: 0.0,
            bits_per_round: 0.0,
            exact_rounds: 0,
            total_rounds: 0,
            mean_rank_error: 0.0,
            max_rank_error: 0,
            rank_tolerance: 0,
            hotspot_rx_fraction: 0.0,
            delivery_rate: 1.0,
            retransmissions_per_round: 0.0,
            peak_round_energy: 0.0,
            failed_nodes: 0,
            rebuilds: 0,
            phase_joules: [0.0; Phase::COUNT],
            phase_bits: [0; Phase::COUNT],
            audit_events: 0,
            audit_discrepancies: 0,
            hists: HistogramSet::default(),
        }
    }
}

impl RunMetrics {
    /// Fraction of rounds answered exactly.
    pub fn exactness(&self) -> f64 {
        if self.total_rounds == 0 {
            return 1.0;
        }
        self.exact_rounds as f64 / self.total_rounds as f64
    }

    /// The degenerate-world contract: every ratio metric is a *number* —
    /// zero-traffic worlds (all sensors dead in round 0, or `rounds == 0`)
    /// yield 0.0 (or `+∞` for the never-dies lifetime), never NaN. Each
    /// ratio's producer guards its denominator
    /// ([`wsn_net::EnergyLedger::hotspot_rx_fraction`],
    /// [`wsn_net::ReliabilityStats::delivery_rate`], the runner's
    /// `rounds.max(1)`); this check pins the contract at the metrics
    /// boundary so a future unguarded ratio cannot slip through.
    pub fn is_nan_free(&self) -> bool {
        !(self.max_node_energy_per_round.is_nan()
            || self.lifetime_rounds.is_nan()
            || self.messages_per_round.is_nan()
            || self.values_per_round.is_nan()
            || self.bits_per_round.is_nan()
            || self.mean_rank_error.is_nan()
            || self.hotspot_rx_fraction.is_nan()
            || self.delivery_rate.is_nan()
            || self.retransmissions_per_round.is_nan()
            || self.peak_round_energy.is_nan()
            || self.exactness().is_nan()
            || self.phase_joules.iter().any(|j| j.is_nan()))
    }
}

/// Mean and standard deviation over simulation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregatedMetrics {
    /// Number of runs aggregated.
    pub runs: u32,
    /// Mean hotspot energy per round (J/round).
    pub max_node_energy_per_round: f64,
    /// Std-dev of the hotspot energy.
    pub max_node_energy_std: f64,
    /// Mean lifetime (rounds).
    pub lifetime_rounds: f64,
    /// Std-dev of the lifetime.
    pub lifetime_std: f64,
    /// Mean messages per round.
    pub messages_per_round: f64,
    /// Mean values per round.
    pub values_per_round: f64,
    /// Mean bits per round.
    pub bits_per_round: f64,
    /// Fraction of exact rounds across all runs.
    pub exactness: f64,
    /// Mean absolute rank error.
    pub mean_rank_error: f64,
    /// Worst absolute rank error of any round in any run.
    pub max_rank_error: u64,
    /// Largest rank tolerance any run certified (identical across runs of
    /// the same configuration; `max` keeps the aggregation conservative).
    pub rank_tolerance: u64,
    /// Mean hotspot receive-energy fraction.
    pub hotspot_rx_fraction: f64,
    /// Mean payload-hop delivery rate.
    pub delivery_rate: f64,
    /// Mean ARQ retransmissions per round.
    pub retransmissions_per_round: f64,
    /// Mean peak single-round sensor energy (J).
    pub peak_round_energy: f64,
    /// Mean sensors killed per run.
    pub failed_nodes: f64,
    /// Mean dynamics-driven routing-tree rebuilds per run.
    pub rebuilds: f64,
    /// Mean per-run energy per protocol phase (J), indexed by
    /// [`Phase::index`].
    pub phase_joules: [f64; Phase::COUNT],
    /// Mean per-run bits on air per protocol phase.
    pub phase_bits: [f64; Phase::COUNT],
    /// Transmission events audited across all runs.
    pub audit_events: u64,
    /// Auditor discrepancies across all runs (must be 0).
    pub audit_discrepancies: u64,
    /// Telemetry histograms of every run merged (bucket-wise sums, not
    /// means: counts stay counts).
    pub hists: HistogramSet,
}

impl AggregatedMetrics {
    /// Aggregates per-run metrics.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn from_runs(runs: &[RunMetrics]) -> Self {
        assert!(!runs.is_empty(), "need at least one run");
        let n = runs.len() as f64;
        let mean = |f: &dyn Fn(&RunMetrics) -> f64| runs.iter().map(f).sum::<f64>() / n;
        let std = |f: &dyn Fn(&RunMetrics) -> f64, m: f64| {
            // An immortal run (nothing ever spends energy — e.g. the only
            // sensor churns out in round 0) estimates an infinite lifetime;
            // `inf − inf` would poison the std with a NaN that breaks
            // aggregate equality (NaN ≠ NaN). A value equal to its
            // (infinite) mean deviates by zero; a finite value against an
            // infinite mean genuinely spreads infinitely.
            let dev = |r: &RunMetrics| {
                let d = f(r) - m;
                if d.is_nan() {
                    0.0
                } else {
                    d.powi(2)
                }
            };
            (runs.iter().map(dev).sum::<f64>() / n).sqrt()
        };
        let energy = mean(&|r: &RunMetrics| r.max_node_energy_per_round);
        let lifetime = mean(&|r: &RunMetrics| r.lifetime_rounds);
        AggregatedMetrics {
            runs: runs.len() as u32,
            max_node_energy_per_round: energy,
            max_node_energy_std: std(&|r: &RunMetrics| r.max_node_energy_per_round, energy),
            lifetime_rounds: lifetime,
            lifetime_std: std(&|r: &RunMetrics| r.lifetime_rounds, lifetime),
            messages_per_round: mean(&|r: &RunMetrics| r.messages_per_round),
            values_per_round: mean(&|r: &RunMetrics| r.values_per_round),
            bits_per_round: mean(&|r: &RunMetrics| r.bits_per_round),
            exactness: mean(&|r: &RunMetrics| r.exactness()),
            mean_rank_error: mean(&|r: &RunMetrics| r.mean_rank_error),
            max_rank_error: runs.iter().map(|r| r.max_rank_error).max().unwrap_or(0),
            rank_tolerance: runs.iter().map(|r| r.rank_tolerance).max().unwrap_or(0),
            hotspot_rx_fraction: mean(&|r: &RunMetrics| r.hotspot_rx_fraction),
            delivery_rate: mean(&|r: &RunMetrics| r.delivery_rate),
            retransmissions_per_round: mean(&|r: &RunMetrics| r.retransmissions_per_round),
            peak_round_energy: mean(&|r: &RunMetrics| r.peak_round_energy),
            failed_nodes: mean(&|r: &RunMetrics| r.failed_nodes as f64),
            rebuilds: mean(&|r: &RunMetrics| r.rebuilds as f64),
            phase_joules: std::array::from_fn(|p| mean(&|r: &RunMetrics| r.phase_joules[p])),
            phase_bits: std::array::from_fn(|p| mean(&|r: &RunMetrics| r.phase_bits[p] as f64)),
            audit_events: runs.iter().map(|r| r.audit_events).sum(),
            audit_discrepancies: runs.iter().map(|r| r.audit_discrepancies as u64).sum(),
            hists: runs.iter().fold(HistogramSet::default(), |mut acc, r| {
                acc.merge(&r.hists);
                acc
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(e: f64, lt: f64, exact: u32, total: u32) -> RunMetrics {
        RunMetrics {
            max_node_energy_per_round: e,
            lifetime_rounds: lt,
            messages_per_round: 10.0,
            values_per_round: 5.0,
            bits_per_round: 100.0,
            exact_rounds: exact,
            total_rounds: total,
            mean_rank_error: 0.0,
            hotspot_rx_fraction: 0.5,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn aggregation_means_and_stds() {
        let agg = AggregatedMetrics::from_runs(&[run(1.0, 100.0, 10, 10), run(3.0, 300.0, 5, 10)]);
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.max_node_energy_per_round, 2.0);
        assert_eq!(agg.max_node_energy_std, 1.0);
        assert_eq!(agg.lifetime_rounds, 200.0);
        assert_eq!(agg.exactness, 0.75);
    }

    #[test]
    fn immortal_runs_keep_the_lifetime_std_finite() {
        // Two immortal runs (infinite lifetime estimate): they agree, so
        // the spread is zero — and crucially not NaN, which would make the
        // aggregate unequal to itself and trip the thread-parity oracle.
        let agg = AggregatedMetrics::from_runs(&[
            run(1.0, f64::INFINITY, 10, 10),
            run(0.0, f64::INFINITY, 10, 10),
        ]);
        assert_eq!(agg.lifetime_rounds, f64::INFINITY);
        assert_eq!(agg.lifetime_std, 0.0);
        assert_eq!(agg, agg.clone(), "aggregate must equal itself");
    }

    #[test]
    fn mixed_mortality_spreads_infinitely_but_never_nan() {
        let agg = AggregatedMetrics::from_runs(&[
            run(1.0, 100.0, 10, 10),
            run(1.0, f64::INFINITY, 10, 10),
        ]);
        assert_eq!(agg.lifetime_rounds, f64::INFINITY);
        assert_eq!(agg.lifetime_std, f64::INFINITY);
        assert!(!agg.lifetime_std.is_nan());
    }

    #[test]
    fn exactness_of_single_run() {
        assert_eq!(run(1.0, 1.0, 9, 10).exactness(), 0.9);
        let empty = RunMetrics {
            total_rounds: 0,
            ..run(1.0, 1.0, 0, 0)
        };
        assert_eq!(empty.exactness(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn rejects_empty_aggregation() {
        let _ = AggregatedMetrics::from_runs(&[]);
    }

    #[test]
    fn zero_traffic_run_has_no_nan_ratios() {
        // The all-zero default is exactly what a world with no surviving
        // traffic produces — every ratio must already be a clean number.
        let dead = RunMetrics::default();
        assert!(dead.is_nan_free());
        assert_eq!(dead.hotspot_rx_fraction, 0.0);
        assert_eq!(dead.exactness(), 1.0);
        let agg = AggregatedMetrics::from_runs(&[dead]);
        assert!(!agg.hotspot_rx_fraction.is_nan());
        assert!(!agg.max_node_energy_std.is_nan());
    }

    #[test]
    fn nan_detection_actually_fires() {
        let bad = RunMetrics {
            hotspot_rx_fraction: f64::NAN,
            ..RunMetrics::default()
        };
        assert!(!bad.is_nan_free());
    }
}
