//! Plain-text rendering of sweep results — the rows/series the paper's
//! figures plot.

use crate::experiments::{SweepResults, XiTraceRow};
use crate::metrics::AggregatedMetrics;

/// Which indicator a table shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Indicator {
    /// Maximum per-node energy consumption (mJ per round).
    MaxEnergy,
    /// Network lifetime (rounds).
    Lifetime,
    /// Messages per round.
    Messages,
    /// Transmitted values per round.
    Values,
    /// Mean absolute rank error.
    RankError,
    /// Fraction of exactly answered rounds.
    Exactness,
    /// ARQ data-frame retransmissions per round.
    Retransmissions,
    /// Fraction of logical payload hops delivered.
    Delivery,
    /// Costliest single round of any sensor (mJ).
    PeakEnergy,
    /// Worst absolute rank error of any round (the ε-tolerance axis of
    /// the sketch frontier).
    MaxRankError,
}

impl Indicator {
    /// Column-header label including unit.
    pub fn label(&self) -> &'static str {
        match self {
            Indicator::MaxEnergy => "max per-node energy [mJ/round]",
            Indicator::Lifetime => "network lifetime [rounds]",
            Indicator::Messages => "messages/round",
            Indicator::Values => "values/round",
            Indicator::RankError => "mean rank error",
            Indicator::Exactness => "exact rounds [%]",
            Indicator::Retransmissions => "retransmissions/round",
            Indicator::Delivery => "delivered hops [%]",
            Indicator::PeakEnergy => "peak round energy [mJ]",
            Indicator::MaxRankError => "max rank error",
        }
    }

    /// Extracts and scales the indicator.
    pub fn extract(&self, m: &AggregatedMetrics) -> f64 {
        match self {
            Indicator::MaxEnergy => m.max_node_energy_per_round * 1e3, // J -> mJ
            Indicator::Lifetime => m.lifetime_rounds,
            Indicator::Messages => m.messages_per_round,
            Indicator::Values => m.values_per_round,
            Indicator::RankError => m.mean_rank_error,
            Indicator::Exactness => m.exactness * 100.0,
            Indicator::Retransmissions => m.retransmissions_per_round,
            Indicator::Delivery => m.delivery_rate * 100.0,
            Indicator::PeakEnergy => m.peak_round_energy * 1e3, // J -> mJ
            Indicator::MaxRankError => m.max_rank_error as f64,
        }
    }
}

fn format_value(x: f64) -> String {
    if !x.is_finite() {
        "inf".to_string()
    } else if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100_000.0 {
        format!("{x:.3e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Renders one indicator of a sweep as an aligned text table
/// (algorithms × cells).
pub fn render_table(results: &SweepResults, indicator: Indicator) -> String {
    let sweep = &results.sweep;
    let mut headers: Vec<String> = vec!["algorithm".to_string()];
    headers.extend(sweep.cells.iter().map(|c| c.label.clone()));

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (ai, alg) in sweep.algorithms.iter().enumerate() {
        let mut row = vec![alg.name().to_string()];
        for cell in &results.results[ai] {
            row.push(match cell {
                Some(m) => format_value(indicator.extract(m)),
                None => "—".to_string(),
            });
        }
        rows.push(row);
    }

    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{} — {}\n", sweep.title, indicator.label()));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{:>width$}", c, width = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(&headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders ablation rows (label → metrics) as an aligned table.
pub fn render_ablation(title: &str, rows: &[crate::experiments::AblationRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{title}\n{:<34}  {:>16}  {:>15}\n",
        "variant", "energy [mJ/rnd]", "lifetime [rnd]"
    ));
    out.push_str(&"-".repeat(69));
    out.push('\n');
    for (label, m) in rows {
        out.push_str(&format!(
            "{:<34}  {:>16}  {:>15}\n",
            label,
            format_value(m.max_node_energy_per_round * 1e3),
            format_value(m.lifetime_rounds)
        ));
    }
    out
}

/// Renders ablation rows including the accuracy columns (for the §3.1
/// sampling trade-off, where answers are deliberately approximate).
pub fn render_ablation_with_error(title: &str, rows: &[crate::experiments::AblationRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{title}\n{:<26}  {:>16}  {:>10}  {:>11}\n",
        "variant", "energy [mJ/rnd]", "exact [%]", "rank error"
    ));
    out.push_str(&"-".repeat(69));
    out.push('\n');
    for (label, m) in rows {
        out.push_str(&format!(
            "{:<26}  {:>16}  {:>10}  {:>11}\n",
            label,
            format_value(m.max_node_energy_per_round * 1e3),
            format_value(m.exactness * 100.0),
            format_value(m.mean_rank_error)
        ));
    }
    out
}

/// Renders the per-phase energy/traffic breakdown of an aggregated
/// experiment (mean per run), plus the audit summary when the runs were
/// audited.
pub fn render_phase_breakdown(title: &str, m: &AggregatedMetrics) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{title} — energy by protocol phase\n{:<12}  {:>14}  {:>9}  {:>14}\n",
        "phase", "energy [mJ]", "share [%]", "bits"
    ));
    out.push_str(&"-".repeat(57));
    out.push('\n');
    let total: f64 = m.phase_joules.iter().sum();
    for phase in wsn_net::Phase::ALL {
        let j = m.phase_joules[phase.index()];
        let share = if total > 0.0 { j / total * 100.0 } else { 0.0 };
        out.push_str(&format!(
            "{:<12}  {:>14}  {:>9}  {:>14}\n",
            phase.name(),
            format_value(j * 1e3),
            format_value(share),
            format_value(m.phase_bits[phase.index()])
        ));
    }
    if m.audit_events > 0 {
        out.push_str(&format!(
            "audit: {} events replayed, {} discrepancies\n",
            m.audit_events, m.audit_discrepancies
        ));
    }
    out
}

/// Renders the Figure-4 Ξ trace as a text series.
pub fn render_xi_trace(trace: &[XiTraceRow]) -> String {
    let mut out = String::from(
        "Fig. 4 — IQ interval Ξ over time (round, min, Ξ_lo, quantile, Ξ_hi, max, refined)\n",
    );
    for r in trace {
        out.push_str(&format!(
            "{:>4}  {:>6}  {:>6}  {:>6}  {:>6}  {:>6}  {}\n",
            r.round,
            r.min,
            r.xi_lo,
            r.quantile,
            r.xi_hi,
            r.max,
            if r.refined { "R" } else { "" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AlgorithmKind, SimulationConfig};
    use crate::experiments::{Cell, Sweep, SweepResults};
    use crate::metrics::{AggregatedMetrics, RunMetrics};

    fn dummy_metrics(e: f64) -> AggregatedMetrics {
        AggregatedMetrics::from_runs(&[RunMetrics {
            max_node_energy_per_round: e,
            lifetime_rounds: 1000.0,
            messages_per_round: 5.0,
            values_per_round: 2.0,
            bits_per_round: 100.0,
            exact_rounds: 10,
            total_rounds: 10,
            mean_rank_error: 0.0,
            hotspot_rx_fraction: 0.5,
            ..RunMetrics::default()
        }])
    }

    fn dummy_results() -> SweepResults {
        let sweep = Sweep {
            id: "fig6",
            title: "Test sweep",
            cells: vec![
                Cell {
                    label: "|N|=10".into(),
                    config: SimulationConfig::quick(),
                },
                Cell {
                    label: "|N|=20".into(),
                    config: SimulationConfig::quick(),
                },
            ],
            algorithms: vec![AlgorithmKind::Iq, AlgorithmKind::Tag],
            skip: vec![],
        };
        SweepResults {
            sweep,
            results: vec![
                vec![Some(dummy_metrics(1e-6)), Some(dummy_metrics(2e-6))],
                vec![Some(dummy_metrics(5e-6)), None],
            ],
        }
    }

    #[test]
    fn table_contains_all_algorithms_and_cells() {
        let t = render_table(&dummy_results(), Indicator::MaxEnergy);
        assert!(t.contains("IQ"));
        assert!(t.contains("TAG"));
        assert!(t.contains("|N|=10"));
        assert!(t.contains("—"), "skipped cells render as em dash");
        assert!(t.contains("mJ/round"));
    }

    #[test]
    fn energy_is_reported_in_millijoules() {
        let t = render_table(&dummy_results(), Indicator::MaxEnergy);
        // 1e-6 J = 0.001 mJ.
        assert!(t.contains("0.0010"), "table was:\n{t}");
    }

    #[test]
    fn all_indicators_render() {
        let r = dummy_results();
        for ind in [
            Indicator::MaxEnergy,
            Indicator::Lifetime,
            Indicator::Messages,
            Indicator::Values,
            Indicator::RankError,
            Indicator::Exactness,
            Indicator::Retransmissions,
            Indicator::Delivery,
            Indicator::PeakEnergy,
        ] {
            let t = render_table(&r, ind);
            assert!(t.contains(ind.label()));
        }
    }

    #[test]
    fn phase_breakdown_renders_all_phases_and_audit_line() {
        let mut run = RunMetrics {
            phase_joules: [0.25, 0.5, 0.25, 0.0, 0.0, 0.0],
            phase_bits: [2500, 5000, 2500, 0, 0, 0],
            audit_events: 42,
            audit_discrepancies: 0,
            ..RunMetrics::default()
        };
        let agg = AggregatedMetrics::from_runs(&[run]);
        let t = render_phase_breakdown("IQ", &agg);
        for name in ["init", "validation", "refinement", "recovery", "other"] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
        assert!(t.contains("50.00"), "validation share, table was:\n{t}");
        assert!(t.contains("42 events replayed, 0 discrepancies"));
        // Without audited events the audit line disappears.
        run.audit_events = 0;
        let silent = render_phase_breakdown("IQ", &AggregatedMetrics::from_runs(&[run]));
        assert!(!silent.contains("audit:"));
    }

    #[test]
    fn render_table_golden_output() {
        // Golden output: the exact table bytes, alignment included, so any
        // formatting drift (widths, separators, scaling) is caught rather
        // than just "contains the right numbers".
        let t = render_table(&dummy_results(), Indicator::MaxEnergy);
        let expected = "Test sweep — max per-node energy [mJ/round]\n\
                        algorithm  |N|=10  |N|=20\n\
                        -------------------------\n\
                        \u{20}      IQ  0.0010  0.0020\n\
                        \u{20}     TAG  0.0050       —\n";
        assert_eq!(t, expected);
    }

    #[test]
    fn render_phase_breakdown_golden_output() {
        let run = RunMetrics {
            phase_joules: [0.25, 0.5, 0.25, 0.0, 0.0, 0.0],
            phase_bits: [2500, 5000, 2500, 0, 0, 0],
            audit_events: 42,
            audit_discrepancies: 0,
            ..RunMetrics::default()
        };
        let t = render_phase_breakdown("IQ", &AggregatedMetrics::from_runs(&[run]));
        let expected = "IQ — energy by protocol phase\n\
             phase            energy [mJ]  share [%]            bits\n\
             ---------------------------------------------------------\n\
             init                     250      25.00            2500\n\
             validation               500      50.00            5000\n\
             refinement               250      25.00            2500\n\
             recovery                   0          0               0\n\
             other                      0          0               0\n\
             rebuild                    0          0               0\n\
             audit: 42 events replayed, 0 discrepancies\n";
        assert_eq!(t, expected);
    }

    #[test]
    fn xi_trace_renders_refinement_marker() {
        let trace = vec![crate::experiments::XiTraceRow {
            round: 0,
            quantile: 50,
            xi_lo: 45,
            xi_hi: 55,
            min: 0,
            max: 100,
            refined: true,
        }];
        let t = render_xi_trace(&trace);
        assert!(t.trim_end().ends_with('R'));
    }
}
