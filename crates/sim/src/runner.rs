//! Executes simulation runs and aggregates their metrics.

use cqp_core::protocol::QueryConfig;
use wsn_data::som::som_placement;
use wsn_data::walks::{RandomWalkDataset, RegimeDataset};
use wsn_data::{Dataset, PressureDataset, Rng, SyntheticDataset};
use wsn_net::loss::LossModel;
use wsn_net::{EnergyAuditor, FailureModel, Network, NodeId, Point, RoutingTree, Topology};

use crate::config::{AlgorithmKind, DatasetSpec, SimulationConfig};
use crate::metrics::{AggregatedMetrics, RunMetrics};
use crate::Value;

/// Deployment area used by all experiments (§5.1.2: 200 m × 200 m).
pub const AREA: f64 = 200.0;

/// How often a disconnected random placement is re-drawn before giving up.
pub const MAX_PLACEMENT_ATTEMPTS: u32 = 200;

/// Builds dataset + connected topology + routing tree for one run,
/// re-drawing disconnected placements. Public so out-of-crate harnesses
/// (the `simulate` traced-run path, the `wsn-check` metamorphic battery)
/// replay *exactly* the world the runner would build for a given
/// `(config, rng)` instead of approximating it.
///
/// # Panics
/// Panics when no connected placement is found within
/// [`MAX_PLACEMENT_ATTEMPTS`] draws — a sign the configuration's radio
/// range is far too small for its node density.
pub fn build_world(
    cfg: &SimulationConfig,
    rng: &mut Rng,
) -> (Box<dyn Dataset>, Topology, RoutingTree) {
    for _ in 0..MAX_PLACEMENT_ATTEMPTS {
        let (dataset, positions): (Box<dyn Dataset>, Vec<Point>) = match &cfg.dataset {
            DatasetSpec::Synthetic(scfg) => {
                let raw = wsn_data::placement::uniform(cfg.sensor_count, AREA, AREA, rng);
                let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
                let sensor_pos: Vec<(f64, f64)> = raw[1..].to_vec();
                let ds = SyntheticDataset::generate(scfg.clone(), &sensor_pos, rng);
                (Box::new(ds), positions)
            }
            DatasetSpec::Pressure(pcfg) => {
                let ds = PressureDataset::generate(pcfg.clone(), rng);
                let firsts = ds.first_measurements();
                let sensor_pos = som_placement(&firsts, AREA, AREA, rng);
                // The paper re-selects the root between runs; we place the
                // sink at a random position (node traces stay fixed).
                let mut positions = vec![Point::new(
                    rng.range_f64(0.0, AREA),
                    rng.range_f64(0.0, AREA),
                )];
                positions.extend(sensor_pos.iter().map(|&(x, y)| Point::new(x, y)));
                (Box::new(ds), positions)
            }
            DatasetSpec::RandomWalk { range_size, step } => {
                let raw = wsn_data::placement::uniform(cfg.sensor_count, AREA, AREA, rng);
                let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
                let ds =
                    RandomWalkDataset::new(cfg.sensor_count, 0, *range_size as i64 - 1, *step, rng);
                (Box::new(ds), positions)
            }
            DatasetSpec::Regime {
                range_size,
                phase_len,
                drift,
            } => {
                let raw = wsn_data::placement::uniform(cfg.sensor_count, AREA, AREA, rng);
                let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
                let ds = RegimeDataset::new(
                    cfg.sensor_count,
                    0,
                    *range_size as i64 - 1,
                    *phase_len,
                    *drift,
                    rng,
                );
                (Box::new(ds), positions)
            }
        };
        let topo = Topology::build(positions, cfg.radio_range);
        if let Ok(tree) = RoutingTree::shortest_path_tree(&topo) {
            return (dataset, topo, tree);
        }
    }
    panic!(
        "could not find a connected placement for |N|={} ρ={} after {} attempts",
        cfg.sensor_count, cfg.radio_range, MAX_PLACEMENT_ATTEMPTS
    );
}

/// Absolute rank error of answer `v` against the true rank `k` (0 when `v`
/// is a value of rank k, i.e. `l < k ≤ l + e`).
pub(crate) fn rank_error(values: &[Value], v: Value, k: u64) -> u64 {
    // Single fused pass over the measurements (this runs once per
    // simulated round, on every round).
    let (mut l, mut e) = (0u64, 0u64);
    for &x in values {
        l += (x < v) as u64;
        e += (x == v) as u64;
    }
    if k > l && k <= l + e {
        0
    } else if k <= l {
        l + 1 - k
    } else {
        k - (l + e).max(1)
    }
}

/// A protocol factory: how ablation studies inject custom configurations
/// into the standard runner. `Sync` so runs can share it across worker
/// threads (factories are pure constructors over plain config data).
pub type ProtocolBuilder<'a> = &'a (dyn Fn(QueryConfig, &wsn_net::MessageSizes) -> Box<dyn cqp_core::ContinuousQuantile>
         + Sync);

/// Executes one simulation run and returns its metrics.
pub fn run_once(cfg: &SimulationConfig, kind: AlgorithmKind, run_index: u32) -> RunMetrics {
    run_once_with(cfg, &|q, s| kind.build(q, s), run_index)
}

/// [`run_once`] with a custom protocol factory.
pub fn run_once_with(
    cfg: &SimulationConfig,
    builder: ProtocolBuilder<'_>,
    run_index: u32,
) -> RunMetrics {
    run_once_capture(cfg, builder, run_index).0
}

/// [`run_once_with`] that also hands back the final [`Network`], so parity
/// harnesses can digest state the metrics summarize (the full audit log,
/// per-node histograms, per-round ledger snapshots) byte for byte.
pub fn run_once_capture(
    cfg: &SimulationConfig,
    builder: ProtocolBuilder<'_>,
    run_index: u32,
) -> (RunMetrics, Network) {
    let mut rng = Rng::seed_from_u64(
        cfg.seed
            ^ (run_index as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(1),
    );
    let (mut dataset, topo, tree) = build_world(cfg, &mut rng);
    let n = dataset.sensor_count();
    assert_eq!(n + 1, topo.len(), "dataset and topology disagree");

    let query = QueryConfig::phi(cfg.phi, n, dataset.range_min(), dataset.range_max());
    let mut alg = builder(query, &cfg.sizes);
    let mut net = Network::new(topo, tree, cfg.radio, cfg.sizes);
    // The audit log is a pure observer (no RNG draws, no charges), so
    // enabling it cannot change any other metric; likewise the span
    // recorder, which only reads the wall clock.
    net.set_audit(cfg.audit);
    net.set_telemetry(cfg.telemetry);
    net.set_wave_workers(cfg.wave_workers);
    if let Some(p) = cfg.loss {
        net.set_loss(Some(LossModel::new(p, rng.next_u64())));
    }
    net.set_reliability(cfg.reliability);
    // Drawn only when failures are on, so reliable/lossy runs keep the
    // exact RNG streams (and therefore results) they had without the
    // failure extension.
    if let Some(pf) = cfg.node_failure {
        net.set_failures(Some(FailureModel::new(pf, rng.next_u64())));
    }
    // The dynamics stream forks last, after every gated legacy draw, and
    // only for non-static configs — so legacy worlds replay their exact
    // historical streams.
    let mut dynamics = crate::dynamics::init(cfg.dynamics.as_ref(), cfg.loss, &mut net, &mut rng);
    // Churn and mobility change which sensors can contribute, so the
    // oracle must judge against the reachable population (like failures).
    let moving_population = cfg
        .dynamics
        .as_ref()
        .is_some_and(|d| d.churn > 0.0 || d.mobility_step > 0.0);

    let mut values = vec![0 as Value; n];
    let mut reachable = Vec::new();
    let mut exact_rounds = 0u32;
    let mut rank_error_sum = 0u64;
    let mut max_rank_error = 0u64;
    for t in 0..cfg.rounds {
        net.fail_round();
        if let Some(d) = dynamics.as_mut() {
            if d.apply(t, &mut net) {
                alg.topology_changed();
            }
        }
        dataset.sample_round(t, &mut values);
        let answer = alg.round(&mut net, &values);
        // Under node failures the ground truth is what a clairvoyant
        // observer of the *surviving, connected* network would report: dead
        // and cut-off sensors cannot contribute to any answer.
        let err = if cfg.node_failure.is_some() {
            reachable.clear();
            reachable.extend(
                (1..=n)
                    .filter(|&i| net.is_reachable(NodeId(i as u32)))
                    .map(|i| values[i - 1]),
            );
            let m = reachable.len() as u64;
            if m == 0 {
                0
            } else {
                let k = (cfg.phi * m as f64).ceil() as u64;
                rank_error(&reachable, answer, k.clamp(1, m))
            }
        } else if moving_population {
            // Same clairvoyant-reachable oracle, but with the protocol's
            // own rank convention (`rank_of_phi`, floor-based): on a
            // connected mobile world the reachable set is all of `values`
            // and `k` reduces exactly to `query.k`, so exactness under
            // rebuilds is genuinely asserted rather than excused.
            reachable.clear();
            reachable.extend(
                (1..=n)
                    .filter(|&i| net.is_reachable(NodeId(i as u32)))
                    .map(|i| values[i - 1]),
            );
            if reachable.is_empty() {
                0
            } else {
                let k = cqp_core::rank::rank_of_phi(cfg.phi, reachable.len());
                rank_error(&reachable, answer, k)
            }
        } else {
            rank_error(&values, answer, query.k)
        };
        if err == 0 {
            exact_rounds += 1;
        }
        rank_error_sum += err;
        max_rank_error = max_rank_error.max(err);
    }

    let (audit_events, audit_discrepancies) = if cfg.audit {
        let report = EnergyAuditor::verify(&net);
        debug_assert!(
            report.is_clean(),
            "energy audit failed: {:?}",
            report.discrepancies
        );
        (report.events, report.discrepancies.len() as u32)
    } else {
        (0, 0)
    };

    let rounds = cfg.rounds.max(1) as f64;
    let ledger = net.ledger();
    let hotspot = ledger.max_sensor_consumption() / rounds;
    let stats = net.stats();
    let rel = net.reliability_stats();
    let metrics = RunMetrics {
        max_node_energy_per_round: hotspot,
        lifetime_rounds: ledger.estimated_lifetime_rounds(net.model()),
        messages_per_round: stats.messages as f64 / rounds,
        values_per_round: stats.values as f64 / rounds,
        bits_per_round: stats.bits as f64 / rounds,
        exact_rounds,
        total_rounds: cfg.rounds,
        mean_rank_error: rank_error_sum as f64 / rounds,
        max_rank_error,
        rank_tolerance: alg.rank_tolerance(n as u64),
        hotspot_rx_fraction: ledger.hotspot_rx_fraction(),
        delivery_rate: rel.delivery_rate(),
        retransmissions_per_round: rel.retransmissions as f64 / rounds,
        peak_round_energy: ledger.max_round_sensor_consumption(),
        failed_nodes: rel.failed_nodes as u32,
        rebuilds: rel.rebuilds as u32,
        phase_joules: net.phases().joules(),
        phase_bits: net.phases().bits(),
        audit_events,
        audit_discrepancies,
        hists: net.histograms().total(),
    };
    (metrics, net)
}

/// Literal network-lifetime measurement: replays dataset rounds (cycling
/// after `cfg.rounds`) until the first sensor's cumulative consumption
/// exceeds its initial energy supply, and returns that round number.
/// Slower than the extrapolated estimate in [`RunMetrics`] but makes no
/// stationarity assumption (DESIGN.md §3.3). `max_rounds` bounds runaway
/// configurations.
pub fn run_until_death(
    cfg: &SimulationConfig,
    kind: AlgorithmKind,
    run_index: u32,
    max_rounds: u32,
) -> Option<u32> {
    let mut rng = Rng::seed_from_u64(
        cfg.seed
            ^ (run_index as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(1),
    );
    let (mut dataset, topo, tree) = build_world(cfg, &mut rng);
    let n = dataset.sensor_count();
    let query = QueryConfig::phi(cfg.phi, n, dataset.range_min(), dataset.range_max());
    let mut alg = kind.build(query, &cfg.sizes);
    let mut net = Network::new(topo, tree, cfg.radio, cfg.sizes);
    net.set_wave_workers(cfg.wave_workers);
    if let Some(p) = cfg.loss {
        net.set_loss(Some(LossModel::new(p, rng.next_u64())));
    }
    net.set_reliability(cfg.reliability);
    if let Some(pf) = cfg.node_failure {
        net.set_failures(Some(FailureModel::new(pf, rng.next_u64())));
    }
    let mut dynamics = crate::dynamics::init(cfg.dynamics.as_ref(), cfg.loss, &mut net, &mut rng);
    let mut values = vec![0 as Value; n];
    for t in 0..max_rounds {
        net.fail_round();
        if let Some(d) = dynamics.as_mut() {
            if d.apply(t, &mut net) {
                alg.topology_changed();
            }
        }
        dataset.sample_round(t % cfg.rounds.max(1), &mut values);
        alg.round(&mut net, &values);
        if net.ledger().max_sensor_consumption() > net.model().initial_energy {
            return Some(t + 1);
        }
    }
    None
}

/// Executes `cfg.runs` runs (re-drawing topology each time, §5.1) and
/// aggregates. Runs execute in parallel on [`crate::parallel::thread_count`]
/// workers; every run seeds its own RNG from `(cfg.seed, run_index)`, so
/// the aggregate is bit-identical to the sequential loop.
pub fn run_experiment(cfg: &SimulationConfig, kind: AlgorithmKind) -> AggregatedMetrics {
    run_experiment_with(cfg, &|q, s| kind.build(q, s))
}

/// [`run_experiment`] with a custom protocol factory (ablation studies).
pub fn run_experiment_with(
    cfg: &SimulationConfig,
    builder: ProtocolBuilder<'_>,
) -> AggregatedMetrics {
    run_experiment_with_threads(cfg, builder, crate::parallel::thread_count())
}

/// [`run_experiment`] with an explicit worker count (`1` = sequential).
pub fn run_experiment_threads(
    cfg: &SimulationConfig,
    kind: AlgorithmKind,
    threads: usize,
) -> AggregatedMetrics {
    run_experiment_with_threads(cfg, &|q, s| kind.build(q, s), threads)
}

/// [`run_experiment_with`] with an explicit worker count (`1` = sequential).
pub fn run_experiment_with_threads(
    cfg: &SimulationConfig,
    builder: ProtocolBuilder<'_>,
    threads: usize,
) -> AggregatedMetrics {
    let runs = crate::parallel::map_indexed(cfg.runs as usize, threads, |r| {
        run_once_with(cfg, builder, r as u32)
    });
    AggregatedMetrics::from_runs(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SimulationConfig {
        SimulationConfig {
            sensor_count: 60,
            rounds: 25,
            runs: 2,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn rank_error_definition() {
        let values = vec![1, 2, 2, 3, 9];
        // k = 3 -> value 2 (ranks 2..3).
        assert_eq!(rank_error(&values, 2, 3), 0);
        assert_eq!(rank_error(&values, 2, 2), 0);
        assert_eq!(rank_error(&values, 2, 4), 1);
        assert_eq!(rank_error(&values, 9, 3), 2); // rank of 9 is 5
        assert_eq!(rank_error(&values, 1, 3), 2); // rank of 1 is 1
                                                  // A value not present at all: 5 sits above 4 values, so it acts
                                                  // like rank 5 -> two ranks away from k = 3.
        assert_eq!(rank_error(&values, 5, 3), 2);
    }

    #[test]
    fn every_algorithm_is_exact_in_simulation() {
        let cfg = tiny_cfg();
        for kind in AlgorithmKind::PAPER_SET {
            let agg = run_experiment(&cfg, kind);
            assert_eq!(agg.exactness, 1.0, "{} must be exact", kind.name());
            assert_eq!(agg.mean_rank_error, 0.0);
            assert!(agg.max_node_energy_per_round > 0.0);
            assert!(agg.lifetime_rounds.is_finite());
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = tiny_cfg();
        let a = run_once(&cfg, AlgorithmKind::Iq, 0);
        let b = run_once(&cfg, AlgorithmKind::Iq, 0);
        assert_eq!(a, b);
        let c = run_once(&cfg, AlgorithmKind::Iq, 1);
        assert_ne!(a, c, "different runs should differ");
    }

    #[test]
    fn tag_costs_more_than_continuous_protocols() {
        let cfg = tiny_cfg();
        let tag = run_experiment(&cfg, AlgorithmKind::Tag);
        let iq = run_experiment(&cfg, AlgorithmKind::Iq);
        assert!(
            tag.max_node_energy_per_round > iq.max_node_energy_per_round,
            "TAG {} should be costlier than IQ {}",
            tag.max_node_energy_per_round,
            iq.max_node_energy_per_round
        );
        assert!(tag.lifetime_rounds < iq.lifetime_rounds);
    }

    #[test]
    fn pressure_world_builds_and_runs() {
        let cfg = SimulationConfig {
            rounds: 15,
            runs: 1,
            dataset: DatasetSpec::Pressure(wsn_data::PressureConfig {
                sensor_count: 80,
                steps: 64,
                ..wsn_data::PressureConfig::default()
            }),
            ..SimulationConfig::default()
        };
        let agg = run_experiment(&cfg, AlgorithmKind::Iq);
        assert_eq!(agg.exactness, 1.0);
    }

    #[test]
    fn literal_lifetime_agrees_with_the_estimate() {
        let cfg = SimulationConfig {
            sensor_count: 60,
            rounds: 40,
            runs: 1,
            ..SimulationConfig::default()
        };
        let estimated = run_once(&cfg, AlgorithmKind::Iq, 0).lifetime_rounds;
        let literal = run_until_death(&cfg, AlgorithmKind::Iq, 0, 20_000)
            .expect("network must eventually die") as f64;
        let ratio = literal / estimated;
        assert!(
            (0.7..=1.4).contains(&ratio),
            "literal {literal} vs estimated {estimated}"
        );
    }

    #[test]
    fn walk_and_regime_datasets_run_exactly() {
        for dataset in [
            DatasetSpec::RandomWalk {
                range_size: 1024,
                step: 5,
            },
            DatasetSpec::Regime {
                range_size: 1024,
                phase_len: 10,
                drift: 3,
            },
        ] {
            let cfg = SimulationConfig {
                sensor_count: 60,
                rounds: 40,
                runs: 1,
                dataset,
                ..SimulationConfig::default()
            };
            for kind in [
                AlgorithmKind::Iq,
                AlgorithmKind::Hbc,
                AlgorithmKind::Adaptive,
            ] {
                let m = run_experiment(&cfg, kind);
                assert_eq!(m.exactness, 1.0, "{}", kind.name());
            }
        }
    }

    #[test]
    fn degenerate_worlds_yield_numbers_not_nans() {
        // Every sensor fails in round 0: essentially zero traffic, the
        // worst case for every ratio denominator.
        let all_fail = SimulationConfig {
            node_failure: Some(1.0),
            sensor_count: 12,
            radio_range: 80.0,
            rounds: 4,
            runs: 1,
            ..SimulationConfig::default()
        };
        for kind in [AlgorithmKind::Tag, AlgorithmKind::Iq, AlgorithmKind::Hbc] {
            let m = run_once(&all_fail, kind, 0);
            assert!(m.is_nan_free(), "{} produced a NaN: {m:?}", kind.name());
            assert!(m.hotspot_rx_fraction >= 0.0);
            assert!(m.mean_rank_error >= 0.0);
        }
        // A zero-round world never divides by its (absent) rounds.
        let no_rounds = SimulationConfig {
            rounds: 0,
            ..all_fail
        };
        let m = run_once(&no_rounds, AlgorithmKind::Tag, 0);
        assert!(m.is_nan_free());
        assert_eq!(m.hotspot_rx_fraction, 0.0);
        assert_eq!(m.bits_per_round, 0.0);
        assert_eq!(m.exactness(), 1.0);
    }

    #[test]
    fn loss_mode_runs_and_reports_rank_error() {
        let cfg = SimulationConfig {
            loss: Some(0.3),
            ..tiny_cfg()
        };
        // With 30% loss some rounds will be wrong, but nothing panics and
        // the error is quantified.
        let agg = run_experiment(&cfg, AlgorithmKind::Pos);
        assert!(agg.exactness <= 1.0);
        assert!(agg.mean_rank_error >= 0.0);
        // Fire-and-forget: nothing is retransmitted, hops go missing.
        assert_eq!(agg.retransmissions_per_round, 0.0);
        assert!(agg.delivery_rate < 1.0);
    }

    #[test]
    fn arq_with_recovery_restores_exactness_under_loss() {
        let lossy = SimulationConfig {
            loss: Some(0.3),
            ..tiny_cfg()
        };
        let reliable = SimulationConfig {
            reliability: wsn_net::ReliabilityConfig::recovering(3, 4),
            ..lossy.clone()
        };
        let raw = run_experiment(&lossy, AlgorithmKind::Pos);
        let rel = run_experiment(&reliable, AlgorithmKind::Pos);
        assert!(rel.exactness > raw.exactness || raw.exactness == 1.0);
        assert_eq!(rel.exactness, 1.0, "three retries + recovery at p=0.3");
        assert!(rel.retransmissions_per_round > 0.0);
        // Reliability costs energy: the hotspot pays for retries and ACKs.
        assert!(rel.max_node_energy_per_round > raw.max_node_energy_per_round);
    }

    #[test]
    fn retry_budget_zero_matches_the_plain_lossy_run() {
        let lossy = SimulationConfig {
            loss: Some(0.25),
            ..tiny_cfg()
        };
        let budget0 = SimulationConfig {
            reliability: wsn_net::ReliabilityConfig::arq(0),
            ..lossy.clone()
        };
        let a = run_once(&lossy, AlgorithmKind::Hbc, 0);
        let b = run_once(&budget0, AlgorithmKind::Hbc, 0);
        assert_eq!(a, b, "budget 0 must be bit-identical to plain loss");
    }

    #[test]
    fn node_failures_are_injected_and_survived() {
        let cfg = SimulationConfig {
            node_failure: Some(0.01),
            reliability: wsn_net::ReliabilityConfig::recovering(2, 2),
            ..tiny_cfg()
        };
        let agg = run_experiment(&cfg, AlgorithmKind::Iq);
        assert!(agg.failed_nodes > 0.0, "1% per round over 25 rounds");
        assert!(agg.exactness > 0.0);
        // Failure schedules are part of the deterministic run seed.
        let a = run_once(&cfg, AlgorithmKind::Iq, 0);
        let b = run_once(&cfg, AlgorithmKind::Iq, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn audited_runs_are_clean_and_perturb_nothing() {
        let plain_cfg = SimulationConfig {
            loss: Some(0.3),
            reliability: wsn_net::ReliabilityConfig::recovering(3, 4),
            node_failure: Some(0.01),
            ..tiny_cfg()
        };
        let audited_cfg = SimulationConfig {
            audit: true,
            ..plain_cfg.clone()
        };
        let plain = run_once(&plain_cfg, AlgorithmKind::Pos, 0);
        let audited = run_once(&audited_cfg, AlgorithmKind::Pos, 0);
        assert!(audited.audit_events > 0, "lossy run must log traffic");
        assert_eq!(audited.audit_discrepancies, 0, "ledger must reconcile");
        // Auditing is observation only: every other metric is bit-identical.
        let neutralized = RunMetrics {
            audit_events: 0,
            ..audited
        };
        assert_eq!(neutralized, plain);
    }

    #[test]
    fn phase_traffic_partitions_the_totals() {
        let cfg = tiny_cfg();
        let m = run_once(&cfg, AlgorithmKind::Hbc, 0);
        let joules: f64 = m.phase_joules.iter().sum();
        assert!(joules > 0.0, "phases must see the traffic");
        let bits: u64 = m.phase_bits.iter().sum();
        let total_bits = m.bits_per_round * cfg.rounds as f64;
        assert!(
            (bits as f64 - total_bits).abs() <= 1e-6 * total_bits,
            "phase bits {bits} vs stats bits {total_bits}"
        );
        // HBC never runs wave recovery on reliable links.
        assert_eq!(m.phase_bits[wsn_net::Phase::Recovery.index()], 0);
    }

    #[test]
    fn peak_round_energy_bounds_the_mean() {
        let m = run_once(&tiny_cfg(), AlgorithmKind::Pos, 0);
        assert!(m.peak_round_energy > 0.0);
        assert!(m.peak_round_energy >= m.max_node_energy_per_round);
    }
}
