//! Per-round instrumentation: run any protocol over a dataset and record
//! what happened each round — the raw series behind time plots like
//! Figure 4 — with CSV export.

use cqp_core::ContinuousQuantile;
use wsn_data::Dataset;
use wsn_net::{Network, Phase};

use crate::Value;

/// One round of a traced run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Round index `t`.
    pub round: u32,
    /// The answer the protocol produced.
    pub quantile: Value,
    /// The oracle's k-th value (equal to `quantile` absent loss).
    pub truth: Value,
    /// Messages transmitted in this round.
    pub messages: u64,
    /// Raw measurements transmitted in this round (hop-counted).
    pub values: u64,
    /// Bits on air in this round.
    pub bits: u64,
    /// Hotspot energy consumed in this round (J).
    pub hotspot_energy: f64,
    /// Smallest measurement in the network this round.
    pub min: Value,
    /// Largest measurement this round.
    pub max: Value,
    /// Bits on air in this round per protocol phase, indexed by
    /// [`Phase::index`] (init, validation, refinement, recovery, other).
    pub phase_bits: [u64; Phase::COUNT],
}

/// Runs `alg` over `dataset` for `rounds` rounds on `net`, recording every
/// round. The protocol keeps running even when its answer diverges from
/// the oracle (loss experiments), so the trace shows the divergence.
pub fn trace_run(
    net: &mut Network,
    alg: &mut dyn ContinuousQuantile,
    dataset: &mut dyn Dataset,
    rounds: u32,
    k: u64,
) -> Vec<RoundRecord> {
    let n = dataset.sensor_count();
    let mut values = vec![0 as Value; n];
    let mut out = Vec::with_capacity(rounds as usize);
    let mut prev_stats = *net.stats();
    let mut prev_hotspot = net.ledger().max_sensor_consumption();
    let mut prev_phase_bits = net.phases().bits();
    for t in 0..rounds {
        dataset.sample_round(t, &mut values);
        let quantile = alg.round(net, &values);
        let truth = cqp_core::rank::kth_smallest(&values, k);
        let stats = *net.stats();
        let hotspot = net.ledger().max_sensor_consumption();
        let phase_bits = net.phases().bits();
        let mut delta = [0u64; Phase::COUNT];
        for (d, (now, before)) in delta
            .iter_mut()
            .zip(phase_bits.iter().zip(prev_phase_bits.iter()))
        {
            *d = now - before;
        }
        out.push(RoundRecord {
            round: t,
            quantile,
            truth,
            messages: stats.messages - prev_stats.messages,
            values: stats.values - prev_stats.values,
            bits: stats.bits - prev_stats.bits,
            hotspot_energy: hotspot - prev_hotspot,
            // A sensor-less network has no measurements; record a neutral 0
            // rather than panicking on a degenerate (but legal) world.
            min: values.iter().min().copied().unwrap_or_default(),
            max: values.iter().max().copied().unwrap_or_default(),
            phase_bits: delta,
        });
        prev_stats = stats;
        prev_hotspot = hotspot;
        prev_phase_bits = phase_bits;
    }
    out
}

/// Initialization-overhead summary of a trace: `(bits of round 0, largest
/// bits of any later round)` — the comparison behind "the full collection
/// dominates update rounds". Returns `None` for traces with fewer than two
/// rounds, where no later round exists to compare against (the guarded
/// form of the `trace[1..] ... .max().unwrap()` pattern).
pub fn init_overhead(trace: &[RoundRecord]) -> Option<(u64, u64)> {
    let (first, rest) = trace.split_first()?;
    let later_max = rest.iter().map(|r| r.bits).max()?;
    Some((first.bits, later_max))
}

/// Renders a trace as CSV (with header), ready for external plotting.
pub fn to_csv(trace: &[RoundRecord]) -> String {
    let mut out = String::from(
        "round,quantile,truth,messages,values,bits,hotspot_energy_j,min,max,\
         bits_init,bits_validation,bits_refinement,bits_recovery,bits_other\n",
    );
    for r in trace {
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.9e},{},{},{},{},{},{},{}\n",
            r.round,
            r.quantile,
            r.truth,
            r.messages,
            r.values,
            r.bits,
            r.hotspot_energy,
            r.min,
            r.max,
            r.phase_bits[0],
            r.phase_bits[1],
            r.phase_bits[2],
            r.phase_bits[3],
            r.phase_bits[4]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_core::iq::IqConfig;
    use cqp_core::{Iq, QueryConfig};
    use wsn_data::synthetic::{SyntheticConfig, SyntheticDataset};
    use wsn_data::Rng;
    use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

    fn world(n: usize) -> (Network, SyntheticDataset) {
        let mut rng = Rng::seed_from_u64(7);
        let raw = wsn_data::placement::uniform(n, 200.0, 200.0, &mut rng);
        let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let topo = Topology::build(positions, 40.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        let net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
        let ds = SyntheticDataset::generate(SyntheticConfig::default(), &raw[1..], &mut rng);
        (net, ds)
    }

    #[test]
    fn trace_matches_oracle_and_sums_to_totals() {
        let n = 80;
        let (mut net, mut ds) = world(n);
        let query = QueryConfig::median(n, ds.range_min(), ds.range_max());
        let mut iq = Iq::new(query, IqConfig::default());
        let trace = trace_run(&mut net, &mut iq, &mut ds, 30, query.k);
        assert_eq!(trace.len(), 30);
        for r in &trace {
            assert_eq!(r.quantile, r.truth, "round {}", r.round);
            assert!(r.min <= r.quantile && r.quantile <= r.max);
        }
        let sum_msgs: u64 = trace.iter().map(|r| r.messages).sum();
        assert_eq!(sum_msgs, net.stats().messages);
        let sum_bits: u64 = trace.iter().map(|r| r.bits).sum();
        assert_eq!(sum_bits, net.stats().bits);
    }

    #[test]
    fn init_round_is_the_expensive_one() {
        let n = 80;
        let (mut net, mut ds) = world(n);
        let query = QueryConfig::median(n, ds.range_min(), ds.range_max());
        let mut iq = Iq::new(query, IqConfig::default());
        let trace = trace_run(&mut net, &mut iq, &mut ds, 20, query.k);
        let (init_bits, later_max) = init_overhead(&trace).expect("20-round trace");
        assert!(
            init_bits > later_max,
            "full collection ({init_bits}) must dominate update rounds ({later_max})"
        );
    }

    #[test]
    fn degenerate_traces_are_guarded_not_panicking() {
        let n = 80;
        // 0-round and 1-round traces run without panicking, and the
        // init-overhead comparison declines rather than indexing past the
        // end.
        let (mut net, mut ds) = world(n);
        let query = QueryConfig::median(n, ds.range_min(), ds.range_max());
        let mut iq = Iq::new(query, IqConfig::default());
        let empty = trace_run(&mut net, &mut iq, &mut ds, 0, query.k);
        assert!(empty.is_empty());
        assert_eq!(init_overhead(&empty), None);
        assert_eq!(to_csv(&empty).lines().count(), 1, "header only");

        let (mut net, mut ds) = world(n);
        let mut iq = Iq::new(query, IqConfig::default());
        let one = trace_run(&mut net, &mut iq, &mut ds, 1, query.k);
        assert_eq!(one.len(), 1);
        assert_eq!(init_overhead(&one), None, "no later rounds to compare");

        let (mut net, mut ds) = world(n);
        let mut iq = Iq::new(query, IqConfig::default());
        let two = trace_run(&mut net, &mut iq, &mut ds, 2, query.k);
        let (init_bits, later) = init_overhead(&two).expect("two rounds suffice");
        assert_eq!(init_bits, two[0].bits);
        assert_eq!(later, two[1].bits);
    }

    #[test]
    fn phase_bits_partition_the_round_bits() {
        let n = 80;
        let (mut net, mut ds) = world(n);
        let query = QueryConfig::median(n, ds.range_min(), ds.range_max());
        let mut iq = Iq::new(query, IqConfig::default());
        let trace = trace_run(&mut net, &mut iq, &mut ds, 15, query.k);
        for r in &trace {
            assert_eq!(
                r.phase_bits.iter().sum::<u64>(),
                r.bits,
                "round {}",
                r.round
            );
        }
        // Round 0 is the initialization collection; afterwards IQ's traffic
        // is validation (plus occasional refinements), never init again.
        assert!(trace[0].phase_bits[Phase::Init.index()] > 0);
        assert_eq!(trace[1].phase_bits[Phase::Init.index()], 0);
        assert!(trace[1].phase_bits[Phase::Validation.index()] > 0);
    }

    #[test]
    fn csv_has_header_and_one_line_per_round() {
        let n = 80;
        let (mut net, mut ds) = world(n);
        let query = QueryConfig::median(n, ds.range_min(), ds.range_max());
        let mut iq = Iq::new(query, IqConfig::default());
        let trace = trace_run(&mut net, &mut iq, &mut ds, 10, query.k);
        let csv = to_csv(&trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 11);
        assert!(lines[0].starts_with("round,quantile,truth"));
        assert!(lines[1].starts_with("0,"));
    }
}
