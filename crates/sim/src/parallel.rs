//! Std-only deterministic parallel execution.
//!
//! Experiments are embarrassingly parallel: every run derives its RNG
//! stream purely from `(cfg.seed, run_index)` and shares nothing with its
//! siblings, so executing runs on worker threads and collecting results
//! into index-ordered slots yields *bit-for-bit* the same aggregate as the
//! sequential loop (see `tests/parallel_parity.rs`). The pool is built on
//! [`std::thread::scope`] — no external dependencies, no unsafe.
//!
//! Thread count resolution order:
//! 1. `WSN_THREADS` environment variable (values `<= 1` force sequential
//!    execution);
//! 2. [`std::thread::available_parallelism`];
//! 3. `1` when neither is available.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads to use, from `WSN_THREADS` or the machine's parallelism.
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var("WSN_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..n` on up to `threads` workers and
/// returns the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven item
/// costs balance automatically; results are collected per-worker as
/// `(index, value)` pairs and merged into ordered slots afterwards, so the
/// output is independent of scheduling. With `threads <= 1` (or `n <= 1`)
/// this degrades to a plain sequential loop on the caller's thread —
/// byte-identical behavior, zero thread overhead.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            let batch = handle.join().expect("worker thread panicked");
            for (i, value) in batch {
                slots[i] = Some(value);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 4, 9] {
            let out = map_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single() {
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn map_indexed_balances_uneven_items() {
        // Items with wildly different costs still land in their slots.
        let out = map_indexed(16, 4, |i| {
            if i % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i as u64 * 3
        });
        assert_eq!(out, (0..16u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
