//! Multi-measurement nodes (§2): "An extension of the concepts proposed in
//! this paper to nodes producing multiple values at a time is trivial
//! since additional values could be interpreted as received from
//! artificial child nodes."
//!
//! This module implements exactly that interpretation: given a deployment
//! whose sensors each produce `m_i` measurements per round, it expands the
//! world into one where every extra measurement belongs to an *artificial
//! child* co-located with — and routed through — its real node. Real
//! nodes keep their shortest-path-tree routes; artificial children are
//! forced onto their real node via [`RoutingTree::from_parents`]. Since
//! the radio model charges the range-dependent term per transmission
//! regardless of link length, the artificial hop approximates the real
//! node's local handling of its extra values; the approximation is
//! conservative (it slightly overcharges the α term).

use wsn_net::{NodeId, Point, RoutingTree, Topology};

use crate::Value;

/// The expansion of a multi-measurement deployment into the paper's
/// single-measurement model.
#[derive(Debug, Clone)]
pub struct ExpandedWorld {
    /// Topology including artificial children (co-located with parents).
    pub topology: Topology,
    /// Routing tree where every artificial child hangs off its real node.
    pub tree: RoutingTree,
    /// Maps each expanded sensor index (0-based, as in a `values` slice)
    /// to the real sensor it belongs to.
    pub origin: Vec<usize>,
}

/// Expands `positions` (root first, then sensors) where sensor `i`
/// produces `multiplicity[i] >= 1` values per round.
///
/// Artificial children are placed at their parent's position, so the
/// distance-dependent part of their transmit energy is zero; the
/// distance-independent part models the real node's own radio handling of
/// its extra values, which is the faithful reading of §2's construction.
///
/// # Panics
/// Panics if any multiplicity is zero or the expanded graph is
/// disconnected.
pub fn expand(positions: &[(f64, f64)], radio_range: f64, multiplicity: &[usize]) -> ExpandedWorld {
    assert_eq!(
        positions.len(),
        multiplicity.len() + 1,
        "positions include the root; multiplicities cover sensors only"
    );
    assert!(
        multiplicity.iter().all(|&m| m >= 1),
        "every sensor produces at least one value"
    );

    let mut points: Vec<Point> = positions.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let mut origin: Vec<usize> = (0..multiplicity.len()).collect();
    for (i, &m) in multiplicity.iter().enumerate() {
        for _ in 1..m {
            // Co-located artificial child of sensor i (node index i+1).
            points.push(points[i + 1]);
            origin.push(i);
        }
    }
    let real_count = positions.len();
    let topology = Topology::build(points, radio_range);
    // Route the real nodes with the usual SPT, then force every
    // artificial child onto its real node (it *is* that node).
    let base_topo = Topology::build(
        positions.iter().map(|&(x, y)| Point::new(x, y)).collect(),
        radio_range,
    );
    let base_tree = RoutingTree::shortest_path_tree(&base_topo)
        .expect("expansion requires a connected deployment");
    let mut parents: Vec<Option<NodeId>> = (0..real_count as u32)
        .map(|i| base_tree.parent(NodeId(i)))
        .collect();
    for &real in &origin[multiplicity.len()..] {
        parents.push(Some(NodeId(real as u32 + 1)));
    }
    let tree = RoutingTree::from_parents(parents).expect("valid by construction");
    ExpandedWorld {
        topology,
        tree,
        origin,
    }
}

/// Flattens a per-real-sensor measurement matrix into the expanded
/// world's `values` slice (row `i` holds sensor `i`'s `m_i` values).
pub fn flatten_measurements(world: &ExpandedWorld, per_sensor: &[Vec<Value>]) -> Vec<Value> {
    let mut next_extra: Vec<usize> = vec![1; per_sensor.len()];
    world
        .origin
        .iter()
        .enumerate()
        .map(|(expanded_idx, &real)| {
            if expanded_idx < per_sensor.len() {
                per_sensor[real][0]
            } else {
                let j = next_extra[real];
                next_extra[real] += 1;
                per_sensor[real][j]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqp_core::iq::IqConfig;
    use cqp_core::{ContinuousQuantile, Iq, QueryConfig};
    use wsn_net::{MessageSizes, Network, RadioModel};

    fn line_positions(n: usize) -> Vec<(f64, f64)> {
        (0..=n).map(|i| (i as f64 * 8.0, 0.0)).collect()
    }

    #[test]
    fn expansion_counts_and_origins() {
        let world = expand(&line_positions(3), 10.0, &[1, 3, 2]);
        // 1 root + 3 real sensors + (2 + 1) artificial children.
        assert_eq!(world.topology.len(), 7);
        assert_eq!(world.origin, vec![0, 1, 2, 1, 1, 2]);
    }

    #[test]
    fn artificial_children_hang_off_their_real_node() {
        let world = expand(&line_positions(3), 10.0, &[1, 3, 1]);
        // Expanded nodes 4 and 5 (indices) are children of sensor 2
        // (node id 2) — same position, depth one below.
        for id in [4u32, 5] {
            let child = wsn_net::NodeId(id);
            assert_eq!(
                world.topology.position(child),
                world.topology.position(wsn_net::NodeId(2))
            );
            assert_eq!(
                world.tree.depth(child),
                world.tree.depth(wsn_net::NodeId(2)) + 1
            );
        }
    }

    #[test]
    fn flatten_preserves_all_measurements() {
        let world = expand(&line_positions(2), 10.0, &[2, 3]);
        let per_sensor = vec![vec![10, 11], vec![20, 21, 22]];
        let mut flat = flatten_measurements(&world, &per_sensor);
        flat.sort_unstable();
        assert_eq!(flat, vec![10, 11, 20, 21, 22]);
    }

    #[test]
    fn quantile_over_multi_measurements_is_exact() {
        let n_real = 5;
        let mult = vec![2usize, 1, 3, 2, 1];
        let world = expand(&line_positions(n_real), 10.0, &mult);
        let n_expanded = world.origin.len();
        let query = QueryConfig::median(n_expanded, 0, 1023);
        let mut net = Network::new(
            world.topology.clone(),
            world.tree.clone(),
            RadioModel::default(),
            MessageSizes::default(),
        );
        let mut iq = Iq::new(query, IqConfig::default());
        for t in 0..10i64 {
            let per_sensor: Vec<Vec<Value>> = mult
                .iter()
                .enumerate()
                .map(|(i, &m)| {
                    (0..m as i64)
                        .map(|j| 100 + i as i64 * 10 + j * 3 + t)
                        .collect()
                })
                .collect();
            let flat = flatten_measurements(&world, &per_sensor);
            let got = iq.round(&mut net, &flat);
            assert_eq!(got, cqp_core::rank::kth_smallest(&flat, query.k), "t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_multiplicity_rejected() {
        let _ = expand(&line_positions(2), 10.0, &[1, 0]);
    }
}
