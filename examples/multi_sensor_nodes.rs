//! Multi-sensor nodes — §2 of the paper: "An extension … to nodes
//! producing multiple values at a time is trivial since additional values
//! could be interpreted as received from artificial child nodes."
//!
//! Each node here carries a temperature, humidity-proxy and light sensor
//! (three values per round, mapped to a common integer scale); the network
//! tracks the median over *all* measurements.
//!
//! ```text
//! cargo run -p wsn-sim --release --example multi_sensor_nodes
//! ```

use cqp_core::iq::IqConfig;
use cqp_core::{ContinuousQuantile, Iq, QueryConfig};
use wsn_data::Rng;
use wsn_net::{MessageSizes, Network, RadioModel};
use wsn_sim::multi::{expand, flatten_measurements};

fn main() {
    let n_real = 60usize;
    let sensors_per_node = 3usize;
    let mut rng = Rng::seed_from_u64(77);
    // Resample until the random deployment is connected at 40 m range.
    let positions = loop {
        let p = wsn_data::placement::uniform_center_root(n_real, 200.0, 200.0, &mut rng);
        let pts: Vec<wsn_net::Point> = p.iter().map(|&(x, y)| wsn_net::Point::new(x, y)).collect();
        let topo = wsn_net::Topology::build(pts, 40.0);
        if topo.is_connected() {
            break p;
        }
    };

    // Expand: every node contributes its own reading plus two artificial
    // children for the extra sensors.
    let mult = vec![sensors_per_node; n_real];
    let world = expand(&positions, 40.0, &mult);
    let n_expanded = world.origin.len();
    println!(
        "{n_real} physical nodes × {sensors_per_node} sensors = {n_expanded} measurements/round"
    );

    let query = QueryConfig::median(n_expanded, 0, 4095);
    let mut net = Network::new(
        world.topology.clone(),
        world.tree.clone(),
        RadioModel::default(),
        MessageSizes::default(),
    );
    let mut iq = Iq::new(query, IqConfig::default());

    println!("\nround  global median  (over {n_expanded} values)");
    for t in 0..15i64 {
        // Per-node sensor suite: three correlated channels with distinct
        // offsets, all drifting upward together.
        let per_sensor: Vec<Vec<i64>> = (0..n_real)
            .map(|i| {
                let base = 1000 + (i as i64 * 13) % 400 + t * 4;
                vec![
                    base,                                // temperature
                    base + 600 + rng.range_i64(-10, 10), // humidity proxy
                    base - 300 + rng.range_i64(-25, 25), // light
                ]
            })
            .collect();
        let flat = flatten_measurements(&world, &per_sensor);
        let median = iq.round(&mut net, &flat);
        let truth = cqp_core::rank::kth_smallest(&flat, query.k);
        assert_eq!(median, truth);
        println!("{t:>5}  {median:>13}");
    }

    println!(
        "\nhotspot energy: {:.4} mJ over 15 rounds; projected lifetime {:.0} rounds",
        net.ledger().max_sensor_consumption() * 1e3,
        net.ledger().estimated_lifetime_rounds(net.model())
    );
}
