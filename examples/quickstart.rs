//! Quickstart: build a small sensor network, run a continuous median query
//! with IQ, and watch the energy accounting.
//!
//! ```text
//! cargo run -p wsn-sim --release --example quickstart
//! ```

use cqp_core::iq::IqConfig;
use cqp_core::{ContinuousQuantile, Iq, QueryConfig};
use wsn_data::synthetic::SyntheticConfig;
use wsn_data::{Dataset, Rng, SyntheticDataset};
use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology};

fn main() {
    // 1. Place 200 sensors (plus the sink) uniformly in a 200 m × 200 m
    //    field and connect everything within a 35 m radio range.
    let mut rng = Rng::seed_from_u64(2014);
    let raw = wsn_data::placement::uniform(200, 200.0, 200.0, &mut rng);
    let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let topo = Topology::build(positions, 35.0);
    let tree = RoutingTree::shortest_path_tree(&topo).expect("connected network");
    println!(
        "network: {} sensors, tree height {} hops",
        topo.sensor_count(),
        tree.height()
    );

    // 2. Wire up the radio energy model (50 nJ/bit + 10 pJ/bit/m², 30 mJ
    //    per node) and the IEEE-802.15.4-style message sizes.
    let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());

    // 3. Generate a spatially correlated, slowly drifting measurement field.
    let sensor_pos: Vec<(f64, f64)> = raw[1..].to_vec();
    let mut data = SyntheticDataset::generate(SyntheticConfig::default(), &sensor_pos, &mut rng);

    // 4. Run a continuous median query with IQ, the paper's heuristic.
    let query = QueryConfig::median(200, data.range_min(), data.range_max());
    let mut iq = Iq::new(query, IqConfig::default());

    let mut values = vec![0i64; 200];
    println!("round  median  Ξ=[lo,hi]       refined  hotspot energy so far");
    for t in 0..30 {
        data.sample_round(t, &mut values);
        let median = iq.round(&mut net, &values);
        let (xl, xr) = iq.xi();
        println!(
            "{:>5}  {:>6}  [{:>5}, {:>5}]  {:>7}  {:.4} mJ",
            t,
            median,
            median + xl,
            median + xr,
            if iq.last_refinements() > 0 {
                "yes"
            } else {
                "no"
            },
            net.ledger().max_sensor_consumption() * 1e3,
        );
    }

    let lifetime = net.ledger().estimated_lifetime_rounds(net.model());
    println!(
        "\nprojected network lifetime: {:.0} rounds (first sensor dead)",
        lifetime
    );
    println!(
        "traffic: {} messages, {} transmitted values, {} broadcast waves",
        net.stats().messages,
        net.stats().values,
        net.stats().broadcasts
    );
}
