//! Algorithm shoot-out: sweep the temporal correlation (sinusoid period τ)
//! and print which protocol wins where — the core finding of the paper
//! (§5.2.2: IQ wins under strong temporal correlation; histogram-based
//! approaches catch up when the quantile moves fast).
//!
//! ```text
//! cargo run -p wsn-sim --release --example algorithm_comparison
//! ```

use wsn_data::synthetic::SyntheticConfig;
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};
use wsn_sim::run_experiment;

fn main() {
    let algorithms = [
        AlgorithmKind::Pos,
        AlgorithmKind::LcllH,
        AlgorithmKind::LcllS,
        AlgorithmKind::Hbc,
        AlgorithmKind::Iq,
    ];
    let periods = [250u32, 125, 63, 32, 8];

    println!("max per-node energy [mJ/round]; lower is better\n");
    print!("{:>9}", "algorithm");
    for p in periods {
        print!("  {:>8}", format!("τ={p}"));
    }
    println!();

    let mut best: Vec<(f64, &str)> = vec![(f64::INFINITY, ""); periods.len()];
    for kind in algorithms {
        print!("{:>9}", kind.name());
        for (i, &period) in periods.iter().enumerate() {
            let cfg = SimulationConfig {
                sensor_count: 250,
                rounds: 120,
                runs: 3,
                dataset: DatasetSpec::Synthetic(SyntheticConfig {
                    period,
                    ..SyntheticConfig::default()
                }),
                ..SimulationConfig::default()
            };
            let m = run_experiment(&cfg, kind);
            let mj = m.max_node_energy_per_round * 1e3;
            assert_eq!(m.exactness, 1.0, "all protocols are exact");
            if mj < best[i].0 {
                best[i] = (mj, kind.name());
            }
            print!("  {:>8.4}", mj);
        }
        println!();
    }

    print!("{:>9}", "winner");
    for (_, name) in &best {
        print!("  {name:>8}");
    }
    println!();
    println!(
        "\nReading: τ is the period of the underlying sinusoid — small τ means\n\
         the median races through the value range; large τ means strong\n\
         temporal correlation between consecutive rounds."
    );
}
