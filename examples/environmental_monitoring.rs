//! Environmental monitoring: the paper's motivating scenario — a barometric
//! pressure network whose median is tracked continuously, with SOM-derived
//! node placement (§5.1.3) and all six §5 algorithms compared head-to-head.
//!
//! ```text
//! cargo run -p wsn-sim --release --example environmental_monitoring
//! ```

use wsn_data::pressure::{PressureConfig, RangeSetting};
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};
use wsn_sim::run_experiment;

fn main() {
    let base = SimulationConfig {
        rounds: 150,
        runs: 3,
        dataset: DatasetSpec::Pressure(PressureConfig {
            sensor_count: 300,
            steps: 700,
            skip: 4,
            range: RangeSetting::Optimistic,
            ..PressureConfig::default()
        }),
        ..SimulationConfig::default()
    };

    println!("Barometric pressure network: 300 traces, SOM placement, skip=4");
    println!(
        "{:>9}  {:>14}  {:>13}  {:>11}  {:>9}",
        "algorithm", "energy[mJ/rnd]", "lifetime[rnd]", "msgs/round", "exact[%]"
    );
    for kind in AlgorithmKind::PAPER_SET {
        let m = run_experiment(&base, kind);
        println!(
            "{:>9}  {:>14.4}  {:>13.0}  {:>11.1}  {:>9.1}",
            kind.name(),
            m.max_node_energy_per_round * 1e3,
            m.lifetime_rounds,
            m.messages_per_round,
            m.exactness * 100.0
        );
    }

    println!("\nSame network under a pessimistic value range (856–1086 hPa):");
    let pessimistic = SimulationConfig {
        dataset: DatasetSpec::Pressure(PressureConfig {
            sensor_count: 300,
            steps: 700,
            skip: 4,
            range: RangeSetting::Pessimistic,
            ..PressureConfig::default()
        }),
        ..base
    };
    for kind in [
        AlgorithmKind::LcllH,
        AlgorithmKind::LcllS,
        AlgorithmKind::Iq,
    ] {
        let m = run_experiment(&pessimistic, kind);
        println!(
            "{:>9}  {:>14.4} mJ/round",
            kind.name(),
            m.max_node_energy_per_round * 1e3
        );
    }
}
