//! Adaptive algorithm switching — the §4.2 future-work idea implemented:
//! a workload that alternates calm and turbulent phases, with the
//! [`cqp_core::Adaptive`] meta-protocol hopping between IQ and HBC while a
//! fixed IQ and a fixed HBC run the same trace for comparison.
//!
//! ```text
//! cargo run -p wsn-sim --release --example adaptive_switching
//! ```

use cqp_core::adaptive::Mode;
use cqp_core::hbc::HbcConfig;
use cqp_core::iq::IqConfig;
use cqp_core::{Adaptive, ContinuousQuantile, Hbc, Iq, QueryConfig};
use wsn_data::Rng;
use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology};

const N: usize = 250;
const ROUNDS: u32 = 200;
const RANGE: i64 = 10_000;

/// Calm phase: slow drift. Turbulent phase: erratic jumps.
fn values_for_round(t: u32, rng: &mut Rng) -> Vec<i64> {
    let turbulent = (t / 50) % 2 == 1;
    (0..N)
        .map(|i| {
            if turbulent {
                rng.range_i64(0, RANGE - 1)
            } else {
                (3000 + i as i64 * 8 + t as i64 * 2) % RANGE
            }
        })
        .collect()
}

fn build_net(seed: u64) -> Network {
    let mut rng = Rng::seed_from_u64(seed);
    let raw = wsn_data::placement::uniform(N, 200.0, 200.0, &mut rng);
    let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let topo = Topology::build(positions, 35.0);
    let tree = RoutingTree::shortest_path_tree(&topo).expect("connected");
    Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
}

fn main() {
    let sizes = MessageSizes::default();
    let query = QueryConfig::median(N, 0, RANGE - 1);

    let mut contenders: Vec<(Box<dyn ContinuousQuantile>, Network)> = vec![
        (Box::new(Iq::new(query, IqConfig::default())), build_net(7)),
        (
            Box::new(Hbc::new(query, HbcConfig::default(), &sizes)),
            build_net(7),
        ),
    ];
    let mut adaptive = Adaptive::new(query, &sizes);
    let mut adaptive_net = build_net(7);

    let mut rng = Rng::seed_from_u64(99);
    let mut mode_log = String::new();
    for t in 0..ROUNDS {
        let values = values_for_round(t, &mut rng);
        for (alg, net) in &mut contenders {
            alg.round(net, &values);
        }
        adaptive.round(&mut adaptive_net, &values);
        if t % 5 == 0 {
            mode_log.push(match adaptive.mode() {
                Mode::Iq => 'i',
                Mode::Hbc => 'h',
            });
        }
    }

    println!("workload: 50-round calm/turbulent phases, {ROUNDS} rounds total\n");
    println!("adaptive mode over time (every 5th round): {mode_log}");
    println!("mode switches: {}\n", adaptive.switches());

    println!(
        "{:>9}  {:>16}  {:>14}",
        "algorithm", "hotspot [mJ/rnd]", "lifetime [rnd]"
    );
    for (alg, net) in &contenders {
        let hotspot = net.ledger().max_sensor_consumption() / ROUNDS as f64;
        println!(
            "{:>9}  {:>16.4}  {:>14.0}",
            alg.name(),
            hotspot * 1e3,
            net.model().initial_energy / hotspot
        );
    }
    let hotspot = adaptive_net.ledger().max_sensor_consumption() / ROUNDS as f64;
    println!(
        "{:>9}  {:>16.4}  {:>14.0}",
        adaptive.name(),
        hotspot * 1e3,
        adaptive_net.model().initial_energy / hotspot
    );
}
