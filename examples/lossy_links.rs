//! Message loss and rank error — the paper's §6 future work: "if messages
//! get lost, a rank error is introduced and it would be interesting to
//! analyze the behaviour of different approaches under loss".
//!
//! This example sweeps the loss probability and reports, per protocol, how
//! often the answer is still the exact k-th value and how far off it is
//! when it isn't.
//!
//! ```text
//! cargo run -p wsn-sim --release --example lossy_links
//! ```

use wsn_sim::config::{AlgorithmKind, SimulationConfig};
use wsn_sim::run_experiment;

fn main() {
    let algorithms = [
        AlgorithmKind::Pos,
        AlgorithmKind::Hbc,
        AlgorithmKind::Iq,
        AlgorithmKind::LcllH,
    ];
    let losses = [0.0, 0.01, 0.05, 0.10, 0.20];

    println!("exact rounds [%] (top) and mean rank error (bottom) under Bernoulli loss\n");
    print!("{:>9}", "algorithm");
    for p in losses {
        print!("  {:>9}", format!("p={:.0}%", p * 100.0));
    }
    println!();

    for kind in algorithms {
        let mut exact_row = format!("{:>9}", kind.name());
        let mut err_row = format!("{:>9}", "");
        for p in losses {
            let cfg = SimulationConfig {
                sensor_count: 200,
                rounds: 120,
                runs: 3,
                loss: (p > 0.0).then_some(p),
                ..SimulationConfig::default()
            };
            let m = run_experiment(&cfg, kind);
            exact_row.push_str(&format!("  {:>9.1}", m.exactness * 100.0));
            err_row.push_str(&format!("  {:>9.2}", m.mean_rank_error));
        }
        println!("{exact_row}");
        println!("{err_row}\n");
    }

    println!(
        "Counter-based protocols drift when validation packets vanish; the\n\
         direct-value phases (IQ's Ξ, retrievals) resynchronize the root,\n\
         which is why the rank error stays bounded instead of diverging."
    );
}
