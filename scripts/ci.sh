#!/usr/bin/env bash
# Offline CI gate. Everything here runs without touching a registry or the
# network — the workspace has zero external dependencies (see README
# "Offline builds"). Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "ci.sh: all gates passed"
