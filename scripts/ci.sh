#!/usr/bin/env bash
# Offline CI gate. Everything here runs without touching a registry or the
# network — the workspace has zero external dependencies (see README
# "Offline builds"). Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> ext-reliability smoke (ARQ + wave recovery under 30% loss)"
./target/release/simulate --algorithm POS --nodes 80 --rounds 30 --runs 2 \
    --loss 0.3 --retries 3 --recovery 4 --seed 7 --threads 2

echo "==> energy-audit smoke (--audit must reconcile bit-exactly, exit 0)"
./target/release/simulate --algorithm IQ --nodes 60 --rounds 20 --runs 2 \
    --loss 0.3 --retries 3 --recovery 4 --node-failures 0.01 \
    --seed 11 --threads 2 --audit

echo "==> telemetry smoke (exporters + self-diff must report identical)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/simulate --algorithm IQ --nodes 60 --rounds 10 --runs 1 \
    --seed 13 --events "$tmp/run.trace.json" --capture "$tmp/a.jsonl" \
    --metrics-out "$tmp/metrics.prom"
./target/release/simulate --algorithm IQ --nodes 60 --rounds 10 --runs 1 \
    --seed 13 --capture "$tmp/b.jsonl"
./target/release/simulate diff "$tmp/a.jsonl" "$tmp/b.jsonl" | grep -q '^identical'
grep -q 'wsn_msg_bits_count' "$tmp/metrics.prom"
grep -q '"traceEvents"' "$tmp/run.trace.json"

echo "==> fuzz smoke (corpus replay + 100 fresh scenarios, 8-protocol battery"
echo "    incl. QD/GKS sketches under the eps-rank-tolerance oracle, boundary"
echo "    phi draws and 1-16-query serve workloads with solo-identity + lane"
echo "    accounting checks, must be clean)"
./target/release/simulate fuzz --scenarios 100 --seed 42 \
    --corpus tests/fuzz_corpus.txt

echo "==> dynamic-world smoke (200 fresh scenarios drawn over the mobility/"
echo "    churn/drift/duty classes plus a mobile churning duty-cycled audit"
echo "    run: must reconcile bit-exactly and replay byte-identically at"
echo "    1 vs 4 wave threads)"
./target/release/simulate fuzz --scenarios 200 --seed 555
./target/release/simulate --algorithm IQ --nodes 60 --rounds 20 --runs 2 \
    --mobility --churn --duty --seed 17 --audit
./target/release/simulate --algorithm IQ --nodes 60 --rounds 20 --runs 2 \
    --mobility --churn --drift --duty --loss 0.2 --retries 2 --seed 17 \
    --wave-threads 1 --capture "$tmp/dyn1.jsonl"
./target/release/simulate --algorithm IQ --nodes 60 --rounds 20 --runs 2 \
    --mobility --churn --drift --duty --loss 0.2 --retries 2 --seed 17 \
    --wave-threads 4 --capture "$tmp/dyn4.jsonl"
./target/release/simulate diff "$tmp/dyn1.jsonl" "$tmp/dyn4.jsonl" \
    | grep -q '^identical'

echo "==> serve smoke (16-query continuous service + mid-run admit/retire:"
echo "    audit must reconcile, digests byte-identical at 1 vs 4 wave threads)"
./target/release/simulate serve --queries 16 --rounds 12 --seed 99 \
    --admit 4:250 --retire 8:16 --audit
./target/release/simulate serve --queries 16 --rounds 12 --seed 99 --shared \
    --admit 4:250 --retire 8:16 --digest --wave-threads 1 > "$tmp/serve1.txt"
./target/release/simulate serve --queries 16 --rounds 12 --seed 99 --shared \
    --admit 4:250 --retire 8:16 --digest --wave-threads 4 > "$tmp/serve4.txt"
cmp "$tmp/serve1.txt" "$tmp/serve4.txt"
grep -q 'discrepancies=0$' "$tmp/serve1.txt"

echo "==> monitor smoke (80-node/48-round/16-query monitored serve: zero"
echo "    perturbation of the digest at 1/2/8 wave threads, a 1 mJ budget"
echo "    raises BudgetOverrun deterministically with exit 1, and the"
echo "    flight-recorder JSONL parses)"
./target/release/simulate serve --queries 16 --nodes 80 --rounds 48 --seed 7 \
    --shared --digest --wave-threads 1 > "$tmp/mon-off.txt"
for w in 1 2 8; do
    ./target/release/simulate serve --queries 16 --nodes 80 --rounds 48 --seed 7 \
        --shared --digest --monitor --budget-mj 1 --wave-threads "$w" \
        > "$tmp/mon-on$w.txt"
    cmp "$tmp/mon-off.txt" "$tmp/mon-on$w.txt"
done
for w in 1 2 8; do
    if ./target/release/simulate serve --queries 16 --nodes 80 --rounds 48 \
        --seed 7 --shared --budget-mj 1 --wave-threads "$w" \
        --health-json "$tmp/health$w.jsonl" > "$tmp/mon-run$w.txt"; then
        echo "monitor smoke: expected exit 1 from the 1 mJ budget overrun" >&2
        exit 1
    fi
    grep -q 'kind=budget_overrun' "$tmp/mon-run$w.txt"
done
cmp "$tmp/health1.jsonl" "$tmp/health2.jsonl"
cmp "$tmp/health1.jsonl" "$tmp/health8.jsonl"
grep -q '"type":"health".*"kind":"budget_overrun"' "$tmp/health1.jsonl"

echo "==> bench regression gate (opt-in: set CI_BENCH_REGRESS=1; re-times"
echo "    the harness benches and diffs medians against BENCH_baseline.json)"
if [ "${CI_BENCH_REGRESS:-0}" = "1" ]; then
    ./scripts/bench_regress.sh
else
    echo "    skipped (CI_BENCH_REGRESS unset)"
fi

echo "==> scale smoke (10k-node HBC throughput under a wall-clock budget)"
# The internal budget catches throughput regressions (~0.6 s on the
# 1-core reference box; 60 s is ~100x headroom for slow CI hardware);
# the outer timeout(1) additionally converts a hang into a hard failure.
timeout --signal=KILL 120 \
    ./target/release/simulate scale --nodes 10000 --rounds 200 \
    --wave-threads 2 --budget-secs 60

echo "ci.sh: all gates passed"
