#!/usr/bin/env bash
# Offline CI gate. Everything here runs without touching a registry or the
# network — the workspace has zero external dependencies (see README
# "Offline builds"). Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> ext-reliability smoke (ARQ + wave recovery under 30% loss)"
./target/release/simulate --algorithm POS --nodes 80 --rounds 30 --runs 2 \
    --loss 0.3 --retries 3 --recovery 4 --seed 7 --threads 2

echo "==> energy-audit smoke (--audit must reconcile bit-exactly, exit 0)"
./target/release/simulate --algorithm IQ --nodes 60 --rounds 20 --runs 2 \
    --loss 0.3 --retries 3 --recovery 4 --node-failures 0.01 \
    --seed 11 --threads 2 --audit

echo "ci.sh: all gates passed"
