#!/usr/bin/env bash
# Bench regression gate: re-run the harness benches into a scratch results
# file and diff the fresh medians against the checked-in baseline with
# `simulate bench-diff`.
#
#   scripts/bench_regress.sh [BASELINE.json] [--tolerance X] [--bench TARGET]
#
# BASELINE defaults to BENCH_baseline.json at the workspace root. The
# tolerance band defaults to 0.5 (a cell may be up to 50% slower than its
# baseline median before the gate trips) and can also be set through the
# BENCH_TOLERANCE environment variable; --bench restricts the run to one
# bench target (repeatable). Refresh the baseline after an intentional
# perf change with (absolute path: cargo runs bench binaries with the
# *package* directory as CWD):
#
#   cargo bench -p wsn-bench -- --out "$PWD/BENCH_baseline.json"
#
# Exit 0 clean, 1 on any regression, 2 on bad input.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="BENCH_baseline.json"
tolerance="${BENCH_TOLERANCE:-0.5}"
bench_args=()
while [ $# -gt 0 ]; do
  case "$1" in
    --tolerance) tolerance="$2"; shift ;;
    --bench) bench_args+=(--bench "$2"); shift ;;
    *) baseline="$1" ;;
  esac
  shift
done

if [ ! -f "$baseline" ]; then
  echo "bench_regress: baseline $baseline not found" >&2
  exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
current="$tmp/BENCH_current.json"

echo "bench_regress: timing benches into $current (baseline $baseline)"
cargo bench -q -p wsn-bench ${bench_args[@]+"${bench_args[@]}"} -- --out "$current"
cargo run -q --release -p wsn-bench --bin simulate -- \
  bench-diff "$baseline" "$current" --tolerance "$tolerance"
