//! Energy-conservation audits across the full protocol stack: every joule
//! the ledger charges must be re-derivable, bit-exactly, from the recorded
//! transmission log — under loss, ARQ retransmissions, wave recovery and
//! crash-stop node failures, for every paper protocol.

use wsn_sim::runner::{run_experiment_threads, run_once};
use wsn_sim::{AlgorithmKind, SimulationConfig};

fn audited_cfg() -> SimulationConfig {
    SimulationConfig {
        sensor_count: 60,
        rounds: 20,
        runs: 2,
        loss: Some(0.3),
        reliability: wsn_net::ReliabilityConfig::recovering(3, 4),
        node_failure: Some(0.01),
        audit: true,
        ..SimulationConfig::default()
    }
}

#[test]
fn every_protocol_reconciles_under_loss_arq_and_failures() {
    let cfg = audited_cfg();
    for kind in [
        AlgorithmKind::Pos,
        AlgorithmKind::Hbc,
        AlgorithmKind::Iq,
        AlgorithmKind::LcllH,
        AlgorithmKind::LcllS,
        AlgorithmKind::Tag,
    ] {
        let m = run_once(&cfg, kind, 0);
        assert!(
            m.audit_events > 0,
            "{} must record traffic under audit",
            kind.name()
        );
        assert_eq!(
            m.audit_discrepancies,
            0,
            "{}: every ledger charge must replay bit-exactly",
            kind.name()
        );
    }
}

#[test]
fn audited_metrics_are_identical_to_unaudited_ones() {
    let audited = audited_cfg();
    let plain = SimulationConfig {
        audit: false,
        ..audited.clone()
    };
    for kind in [AlgorithmKind::Iq, AlgorithmKind::Tag] {
        let a = run_once(&audited, kind, 1);
        let b = run_once(&plain, kind, 1);
        assert_eq!(a.audit_discrepancies, 0);
        let neutral = wsn_sim::metrics::RunMetrics {
            audit_events: 0,
            ..a
        };
        assert_eq!(
            neutral,
            b,
            "{}: auditing must be pure observation",
            kind.name()
        );
    }
}

#[test]
fn audit_is_scheduling_invariant() {
    // The audited aggregate — including per-phase energy, event and
    // discrepancy counts — must be bit-identical however runs are spread
    // over workers.
    let cfg = SimulationConfig {
        runs: 4,
        ..audited_cfg()
    };
    let sequential = run_experiment_threads(&cfg, AlgorithmKind::Pos, 1);
    let parallel = run_experiment_threads(&cfg, AlgorithmKind::Pos, 8);
    assert_eq!(sequential, parallel);
    assert!(sequential.audit_events > 0);
    assert_eq!(sequential.audit_discrepancies, 0);
}

#[test]
fn phase_accounting_covers_all_traffic() {
    let cfg = audited_cfg();
    let m = run_once(&cfg, AlgorithmKind::Hbc, 0);
    let phase_bits: u64 = m.phase_bits.iter().sum();
    let total_bits = m.bits_per_round * cfg.rounds as f64;
    assert!(
        (phase_bits as f64 - total_bits).abs() <= 1e-6 * total_bits,
        "per-phase bits {phase_bits} must partition the global count {total_bits}"
    );
    // Loss + recovering reliability makes the recovery phase visible.
    assert!(
        m.phase_joules[wsn_net::Phase::Recovery.index()] > 0.0,
        "wave recovery must be attributed to the recovery phase"
    );
}

#[test]
fn a_corrupted_ledger_is_flagged() {
    use wsn_net::{
        EnergyAuditor, MessageSizes, Network, NodeId, Point, RadioModel, RoutingTree, Topology,
    };

    let positions: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
    let topo = Topology::build(positions, 12.0);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
    net.set_audit(true);
    for _ in 0..3 {
        net.broadcast(256);
        net.end_round();
    }
    assert!(EnergyAuditor::verify(&net).is_clean());

    // A phantom charge that no transmission explains must be caught.
    let mut forged = net.ledger().clone();
    forged.charge(NodeId(2), 1e-9);
    let report = EnergyAuditor::verify_parts(
        net.audit_log(),
        net.model(),
        net.sizes(),
        net.topology().radio_range(),
        &forged,
    );
    assert!(!report.is_clean(), "the forged ledger must not reconcile");
    assert!(report
        .discrepancies
        .iter()
        .any(|d| d.node == NodeId(2) && d.what == "final total"));
}
