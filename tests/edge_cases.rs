//! Degenerate-input robustness: the smallest networks, the narrowest value
//! universes, extreme ranks, and star/deep-line topologies. Every protocol
//! must stay exact (or panic loudly at construction for genuinely invalid
//! configurations — never mid-simulation).

use cqp_core::rank::kth_smallest;
use cqp_core::QueryConfig;
use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology};
use wsn_sim::config::AlgorithmKind;

const ALL: [AlgorithmKind; 10] = [
    AlgorithmKind::Tag,
    AlgorithmKind::Pos,
    AlgorithmKind::LcllH,
    AlgorithmKind::LcllS,
    AlgorithmKind::LcllR,
    AlgorithmKind::Hbc,
    AlgorithmKind::HbcNb,
    AlgorithmKind::Iq,
    AlgorithmKind::Adaptive,
    AlgorithmKind::Gk,
];

fn net_from(positions: Vec<Point>, range: f64) -> Network {
    let topo = Topology::build(positions, range);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
}

fn line(n_sensors: usize) -> Network {
    net_from(
        (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 8.0, 0.0))
            .collect(),
        10.0,
    )
}

fn star(n_sensors: usize) -> Network {
    let mut positions = vec![Point::new(0.0, 0.0)];
    for i in 0..n_sensors {
        let a = i as f64 * std::f64::consts::TAU / n_sensors as f64;
        positions.push(Point::new(a.cos() * 5.0, a.sin() * 5.0));
    }
    net_from(positions, 6.0)
}

#[test]
fn single_sensor_network() {
    let query = QueryConfig::median(1, 0, 1023);
    for kind in ALL {
        let mut alg = kind.build(query, &MessageSizes::default());
        let mut net = line(1);
        for t in 0..6i64 {
            let v = 100 + t * 37;
            assert_eq!(alg.round(&mut net, &[v]), v, "{} t={t}", kind.name());
        }
    }
}

#[test]
fn two_sensors_and_both_extreme_ranks() {
    for k in [1u64, 2] {
        let query = QueryConfig {
            k,
            range_min: 0,
            range_max: 255,
        };
        for kind in ALL {
            let mut alg = kind.build(query, &MessageSizes::default());
            let mut net = line(2);
            for t in 0..6i64 {
                let values = vec![(40 + t * 3) % 256, (200 - t * 5) % 256];
                let want = kth_smallest(&values, k);
                assert_eq!(
                    alg.round(&mut net, &values),
                    want,
                    "{} k={k} t={t}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn unit_value_universe() {
    // r_min == r_max: every measurement is forced to the same value.
    let query = QueryConfig::median(10, 7, 7);
    for kind in ALL {
        let mut alg = kind.build(query, &MessageSizes::default());
        let mut net = line(10);
        for _ in 0..4 {
            assert_eq!(alg.round(&mut net, &[7; 10]), 7, "{}", kind.name());
        }
    }
}

#[test]
fn binary_value_universe() {
    let query = QueryConfig::median(9, 0, 1);
    for kind in ALL {
        let mut alg = kind.build(query, &MessageSizes::default());
        let mut net = star(9);
        for t in 0..8usize {
            // Shift the 0/1 split across the median each round.
            let ones = (t * 2) % 10;
            let values: Vec<i64> = (0..9).map(|i| i64::from(i < ones)).collect();
            let want = kth_smallest(&values, query.k);
            assert_eq!(alg.round(&mut net, &values), want, "{} t={t}", kind.name());
        }
    }
}

#[test]
fn star_topology_single_hop() {
    let n = 12;
    let query = QueryConfig::median(n, 0, 511);
    for kind in ALL {
        let mut alg = kind.build(query, &MessageSizes::default());
        let mut net = star(n);
        for t in 0..6i64 {
            let values: Vec<i64> = (0..n as i64).map(|i| (i * 43 + t * 11) % 512).collect();
            assert_eq!(
                alg.round(&mut net, &values),
                kth_smallest(&values, query.k),
                "{} t={t}",
                kind.name()
            );
        }
    }
}

#[test]
fn deep_line_topology() {
    // 60-hop line: worst relay depth, fragmentation along the funnel.
    let n = 60;
    let query = QueryConfig::median(n, 0, 1023);
    for kind in ALL {
        let mut alg = kind.build(query, &MessageSizes::default());
        let mut net = line(n);
        for t in 0..4i64 {
            let values: Vec<i64> = (0..n as i64).map(|i| (i * 17 + t * 29) % 1024).collect();
            assert_eq!(
                alg.round(&mut net, &values),
                kth_smallest(&values, query.k),
                "{} t={t}",
                kind.name()
            );
        }
    }
}

#[test]
fn values_pinned_to_range_boundaries() {
    let n = 8;
    let query = QueryConfig::median(n, 0, 1023);
    for kind in ALL {
        let mut alg = kind.build(query, &MessageSizes::default());
        let mut net = line(n);
        // All at minimum, all at maximum, then an even split.
        for values in [
            vec![0i64; n],
            vec![1023; n],
            (0..n as i64)
                .map(|i| if i % 2 == 0 { 0 } else { 1023 })
                .collect(),
        ] {
            assert_eq!(
                alg.round(&mut net, &values),
                kth_smallest(&values, query.k),
                "{}",
                kind.name()
            );
        }
    }
}

#[test]
fn negative_value_universes_work() {
    // The protocols are defined over any integer interval; nothing should
    // assume non-negative measurements.
    let n = 10;
    let query = QueryConfig::median(n, -512, 511);
    for kind in ALL {
        let mut alg = kind.build(query, &MessageSizes::default());
        let mut net = line(n);
        for t in 0..5i64 {
            let values: Vec<i64> = (0..n as i64)
                .map(|i| (i * 97 + t * 13) % 512 - 256)
                .collect();
            assert_eq!(
                alg.round(&mut net, &values),
                kth_smallest(&values, query.k),
                "{} t={t}",
                kind.name()
            );
        }
    }
}

#[test]
fn tiny_payload_messages_still_work() {
    // A 16-byte payload fits only 8 measurements: fragmentation and tiny
    // histograms everywhere.
    let sizes = MessageSizes {
        max_payload_bits: 16 * 8,
        ..MessageSizes::default()
    };
    let n = 20;
    let query = QueryConfig::median(n, 0, 255);
    for kind in ALL {
        let mut alg = kind.build(query, &sizes);
        let positions = (0..=n).map(|i| Point::new(i as f64 * 8.0, 0.0)).collect();
        let topo = Topology::build(positions, 10.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        let mut net = Network::new(topo, tree, RadioModel::default(), sizes);
        for t in 0..5i64 {
            let values: Vec<i64> = (0..n as i64).map(|i| (i * 31 + t * 7) % 256).collect();
            assert_eq!(
                alg.round(&mut net, &values),
                kth_smallest(&values, query.k),
                "{} t={t}",
                kind.name()
            );
        }
    }
}
