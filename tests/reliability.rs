//! End-to-end guarantees of the reliability extension (ISSUE: ARQ +
//! node-failure recovery): exactness bought back under heavy loss, the
//! fire-and-forget equivalence of a zero retry budget, termination under
//! total loss, failure injection, and thread-count determinism.

use wsn_net::ReliabilityConfig;
use wsn_sim::runner::{run_experiment_threads, run_once};
use wsn_sim::{AlgorithmKind, SimulationConfig};

fn lossy_cfg(sensors: usize, rounds: u32, runs: u32) -> SimulationConfig {
    SimulationConfig {
        sensor_count: sensors,
        rounds,
        runs,
        loss: Some(0.3),
        ..SimulationConfig::default()
    }
}

/// The acceptance sweep: with an ARQ retry budget of 3 and wave recovery,
/// all four paper protocols return the exact quantile on a 500-node network
/// despite 30 % per-fragment loss — and the reliability traffic is visible
/// in both the retransmission counters and the energy ledger.
#[test]
fn paper_protocols_are_exact_at_500_nodes_under_heavy_loss() {
    let raw = lossy_cfg(500, 15, 1);
    let reliable = SimulationConfig {
        reliability: ReliabilityConfig::recovering(3, 4),
        ..raw.clone()
    };
    for kind in [
        AlgorithmKind::Pos,
        AlgorithmKind::Hbc,
        AlgorithmKind::Iq,
        AlgorithmKind::LcllH,
    ] {
        let m = run_once(&reliable, kind, 0);
        assert_eq!(
            m.exactness(),
            1.0,
            "{} must be exact with ARQ(3) + recovery at p=0.3",
            kind.name()
        );
        assert!(m.retransmissions_per_round > 0.0, "{}", kind.name());
        assert!(m.delivery_rate > 0.95, "{}", kind.name());

        // The retransmissions and ACKs are charged: the same workload
        // without ARQ burns less energy at the hotspot.
        let raw_m = run_once(&raw, kind, 0);
        assert!(
            m.max_node_energy_per_round > raw_m.max_node_energy_per_round,
            "{}: reliability must cost energy",
            kind.name()
        );
    }
}

/// An ARQ budget of zero is fire-and-forget: byte-identical metrics to the
/// plain lossy path (no ACKs, no retries, same RNG stream).
#[test]
fn zero_retry_budget_equals_plain_loss() {
    let plain = lossy_cfg(120, 40, 2);
    let budget0 = SimulationConfig {
        reliability: ReliabilityConfig::arq(0),
        ..plain.clone()
    };
    for kind in [AlgorithmKind::Pos, AlgorithmKind::Iq] {
        for run in 0..2 {
            let a = run_once(&plain, kind, run);
            let b = run_once(&budget0, kind, run);
            assert_eq!(a, b, "{} run {run}", kind.name());
        }
    }
}

/// Total loss must terminate: bounded retries, bounded recovery passes,
/// bounded wave re-issues. Every answer simply degrades to stale state.
#[test]
fn total_loss_terminates() {
    let cfg = SimulationConfig {
        sensor_count: 60,
        rounds: 10,
        runs: 1,
        loss: Some(1.0),
        reliability: ReliabilityConfig::recovering(2, 3),
        ..SimulationConfig::default()
    };
    let m = run_once(&cfg, AlgorithmKind::Pos, 0);
    assert_eq!(m.delivery_rate, 0.0);
}

/// Crash-stop failures kill sensors mid-run; the tree is repaired and the
/// run completes with a quantified degradation (measured against the
/// reachable-network oracle).
#[test]
fn node_failures_inject_and_repair() {
    let cfg = SimulationConfig {
        sensor_count: 150,
        rounds: 40,
        runs: 2,
        loss: Some(0.1),
        reliability: ReliabilityConfig::recovering(3, 4),
        node_failure: Some(0.005),
        ..SimulationConfig::default()
    };
    let agg = run_experiment_threads(&cfg, AlgorithmKind::Iq, 2);
    assert!(agg.failed_nodes > 0.0, "0.5% × 40 rounds × 150 sensors");
    // Dead nodes leave stale counts behind, so exact hits drop — but the
    // answer must stay close to the reachable-network oracle.
    assert!(agg.exactness > 0.0, "protocol must keep answering");
    assert!(agg.mean_rank_error < 5.0, "got {}", agg.mean_rank_error);
}

/// Degenerate loss probability 0.0: enabling the loss model (and a full
/// ARQ budget) must change nothing observable — every protocol stays
/// exact, nothing is ever retransmitted, every hop is delivered, and the
/// energy-audit replay reconciles the ledger bit-exactly.
#[test]
fn loss_probability_zero_is_indistinguishable_from_reliable_links() {
    let cfg = SimulationConfig {
        sensor_count: 80,
        rounds: 20,
        runs: 1,
        loss: Some(0.0),
        reliability: ReliabilityConfig::recovering(3, 2),
        audit: true,
        ..SimulationConfig::default()
    };
    for kind in [AlgorithmKind::Pos, AlgorithmKind::Hbc, AlgorithmKind::Iq] {
        let m = run_once(&cfg, kind, 0);
        assert_eq!(m.exactness(), 1.0, "{}", kind.name());
        assert_eq!(m.retransmissions_per_round, 0.0, "{}", kind.name());
        assert_eq!(m.delivery_rate, 1.0, "{}", kind.name());
        assert!(m.audit_events > 0, "{}: audited traffic", kind.name());
        assert_eq!(m.audit_discrepancies, 0, "{}", kind.name());
    }
}

/// Degenerate loss probability 1.0 with a finite ARQ budget: the run must
/// terminate (bounded retries, bounded recovery passes), deliver nothing,
/// charge every futile retransmission — and the audit replay must still
/// reconcile that energy bit-exactly against the recorded traffic.
#[test]
fn total_loss_with_finite_budget_terminates_and_accounts_its_energy() {
    let cfg = SimulationConfig {
        sensor_count: 50,
        rounds: 8,
        runs: 1,
        loss: Some(1.0),
        reliability: ReliabilityConfig::recovering(3, 2),
        audit: true,
        ..SimulationConfig::default()
    };
    for kind in [AlgorithmKind::Pos, AlgorithmKind::Iq] {
        let m = run_once(&cfg, kind, 0);
        assert_eq!(m.delivery_rate, 0.0, "{}: nothing arrives", kind.name());
        assert!(
            m.retransmissions_per_round > 0.0,
            "{}: the budget is spent before giving up",
            kind.name()
        );
        assert!(m.audit_events > 0, "{}", kind.name());
        assert_eq!(
            m.audit_discrepancies,
            0,
            "{}: wasted energy still reconciles",
            kind.name()
        );
    }
}

/// The PR 1 determinism contract extends to the reliability layer:
/// aggregates are bit-for-bit identical across worker counts.
#[test]
fn reliability_runs_are_thread_count_invariant() {
    let cfg = SimulationConfig {
        sensor_count: 120,
        rounds: 30,
        runs: 4,
        loss: Some(0.3),
        reliability: ReliabilityConfig::recovering(3, 4),
        node_failure: Some(0.002),
        ..SimulationConfig::default()
    };
    for kind in [AlgorithmKind::Pos, AlgorithmKind::LcllH] {
        let seq = run_experiment_threads(&cfg, kind, 1);
        let par = run_experiment_threads(&cfg, kind, 8);
        assert_eq!(seq, par, "{}", kind.name());
    }
}
