//! Cross-crate exactness: every protocol must return the true k-th value
//! every round, on every dataset, for every quantile — the defining
//! property of the paper's algorithm class ("exact methods", §3.1).

use cqp_core::QueryConfig;
use wsn_data::pressure::PressureConfig;
use wsn_data::synthetic::SyntheticConfig;
use wsn_data::Rng;
use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology};
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};
use wsn_sim::run_experiment;

const ALL: [AlgorithmKind; 10] = [
    AlgorithmKind::Tag,
    AlgorithmKind::Pos,
    AlgorithmKind::LcllH,
    AlgorithmKind::LcllS,
    AlgorithmKind::LcllR,
    AlgorithmKind::Hbc,
    AlgorithmKind::HbcNb,
    AlgorithmKind::Iq,
    AlgorithmKind::Adaptive,
    AlgorithmKind::Gk,
];

fn quick(dataset: DatasetSpec) -> SimulationConfig {
    SimulationConfig {
        sensor_count: 90,
        rounds: 50,
        runs: 2,
        dataset,
        ..SimulationConfig::default()
    }
}

#[test]
fn all_algorithms_exact_on_synthetic_defaults() {
    let cfg = quick(DatasetSpec::Synthetic(SyntheticConfig::default()));
    for kind in ALL {
        let m = run_experiment(&cfg, kind);
        assert_eq!(m.exactness, 1.0, "{} not exact", kind.name());
        assert_eq!(m.mean_rank_error, 0.0, "{}", kind.name());
    }
}

#[test]
fn all_algorithms_exact_under_fast_dynamics() {
    // τ = 8: the median races through the range — worst case for the
    // continuous protocols' filters.
    let cfg = quick(DatasetSpec::Synthetic(SyntheticConfig {
        period: 8,
        noise_percent: 50.0,
        ..SyntheticConfig::default()
    }));
    for kind in ALL {
        let m = run_experiment(&cfg, kind);
        assert_eq!(m.exactness, 1.0, "{} not exact at τ=8/ψ=50", kind.name());
    }
}

#[test]
fn all_algorithms_exact_on_pressure_traces() {
    let cfg = quick(DatasetSpec::Pressure(PressureConfig {
        sensor_count: 90,
        steps: 500,
        skip: 8,
        ..PressureConfig::default()
    }));
    for kind in ALL {
        let m = run_experiment(&cfg, kind);
        assert_eq!(m.exactness, 1.0, "{} not exact on pressure", kind.name());
    }
}

#[test]
fn all_algorithms_exact_for_skewed_quantiles() {
    // Definition 2.1 covers any φ, not just the median.
    for phi in [0.05, 0.25, 0.75, 0.95] {
        let cfg = SimulationConfig {
            phi,
            rounds: 30,
            runs: 1,
            sensor_count: 80,
            ..SimulationConfig::default()
        };
        for kind in ALL {
            let m = run_experiment(&cfg, kind);
            assert_eq!(m.exactness, 1.0, "{} not exact at φ={phi}", kind.name());
        }
    }
}

#[test]
fn all_algorithms_exact_on_tiny_value_universe() {
    // Heavy duplication: range of only 16 values for 90 sensors.
    let cfg = quick(DatasetSpec::Synthetic(SyntheticConfig {
        range_size: 16,
        ..SyntheticConfig::default()
    }));
    for kind in ALL {
        let m = run_experiment(&cfg, kind);
        assert_eq!(m.exactness, 1.0, "{} not exact on tiny range", kind.name());
    }
}

/// Drives the protocols directly (outside the sim runner) on a handcrafted
/// adversarial sequence: constant, step jump to both range ends, heavy
/// ties, oscillation.
#[test]
fn adversarial_sequence_direct_drive() {
    let n = 40usize;
    let positions: Vec<Point> = (0..=n).map(|i| Point::new(i as f64 * 8.0, 0.0)).collect();
    let topo = Topology::build(positions, 10.0);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    let range_max = 4095;
    let query = QueryConfig::median(n, 0, range_max);

    let rounds: Vec<Vec<i64>> = vec![
        vec![2000; n],
        vec![2000; n],
        (0..n).map(|i| if i < n / 2 { 0 } else { 4095 }).collect(),
        (0..n).map(|i| i as i64 * 100).collect(),
        vec![0; n],
        vec![4095; n],
        (0..n).map(|i| 2048 + (i as i64 % 2)).collect(),
        (0..n).map(|i| (i as i64 * 997) % 4096).collect(),
        vec![1; n],
    ];

    let sizes = MessageSizes::default();
    for kind in ALL {
        let mut alg = kind.build(query, &sizes);
        let mut net = Network::new(topo.clone(), tree.clone(), RadioModel::default(), sizes);
        for (t, values) in rounds.iter().enumerate() {
            let got = alg.round(&mut net, values);
            let want = cqp_core::rank::kth_smallest(values, query.k);
            assert_eq!(got, want, "{} wrong at adversarial round {t}", kind.name());
        }
    }
}

/// Random fuzz across seeds, kept small enough for CI; the proptest suites
/// in each crate go deeper.
#[test]
fn randomized_fuzz_direct_drive() {
    let n = 25usize;
    let positions: Vec<Point> = (0..=n)
        .map(|i| Point::new((i % 6) as f64 * 9.0, (i / 6) as f64 * 9.0))
        .collect();
    let topo = Topology::build(positions, 13.0);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    let sizes = MessageSizes::default();

    for seed in 0..8u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let k = rng.range_i64(1, n as i64) as u64;
        let query = QueryConfig {
            k,
            range_min: 0,
            range_max: 255,
        };
        for kind in ALL {
            let mut alg = kind.build(query, &sizes);
            let mut net = Network::new(topo.clone(), tree.clone(), RadioModel::default(), sizes);
            let mut rng2 = Rng::seed_from_u64(seed.wrapping_mul(31) + 7);
            for t in 0..25 {
                let values: Vec<i64> = (0..n).map(|_| rng2.range_i64(0, 255)).collect();
                let got = alg.round(&mut net, &values);
                let want = cqp_core::rank::kth_smallest(&values, k);
                assert_eq!(got, want, "{} wrong: seed={seed} k={k} t={t}", kind.name());
            }
        }
    }
}

/// The b-ary snapshot initialization ([21], §4.2.1) must leave every
/// protocol in a consistent state: exactness from round 0 onward.
#[test]
fn bary_search_init_keeps_protocols_exact() {
    use cqp_core::hbc::{Hbc, HbcConfig};
    use cqp_core::init::InitStrategy;
    use cqp_core::iq::{Iq, IqConfig};
    use cqp_core::lcll::{Lcll, RefiningStrategy};
    use cqp_core::{ContinuousQuantile, Pos};

    let n = 35usize;
    let positions: Vec<Point> = (0..=n).map(|i| Point::new(i as f64 * 8.0, 0.0)).collect();
    let topo = Topology::build(positions, 10.0);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    let sizes = MessageSizes::default();
    let query = QueryConfig::median(n, 0, 2047);

    let protos: Vec<Box<dyn ContinuousQuantile>> = vec![
        Box::new(Pos::new(query).with_init(InitStrategy::BarySearch)),
        Box::new(Hbc::new(
            query,
            HbcConfig {
                init: InitStrategy::BarySearch,
                ..HbcConfig::default()
            },
            &sizes,
        )),
        Box::new(Iq::new(
            query,
            IqConfig {
                init: InitStrategy::BarySearch,
                ..IqConfig::default()
            },
        )),
        Box::new(
            Lcll::new(query, RefiningStrategy::Slip, &sizes).with_init(InitStrategy::BarySearch),
        ),
        Box::new(
            Lcll::new(query, RefiningStrategy::Hierarchical, &sizes)
                .with_init(InitStrategy::BarySearch),
        ),
    ];
    for mut alg in protos {
        let mut net = Network::new(topo.clone(), tree.clone(), RadioModel::default(), sizes);
        let mut rng = Rng::seed_from_u64(123);
        for t in 0..25 {
            let values: Vec<i64> = (0..n)
                .map(|i| 700 + ((i as i64 * 31 + t * 13) % 500) + rng.range_i64(-5, 5))
                .collect();
            let got = alg.round(&mut net, &values);
            assert_eq!(
                got,
                cqp_core::rank::kth_smallest(&values, query.k),
                "{} wrong at t={t} with b-ary init",
                alg.name()
            );
        }
    }
}

/// Exactness must also hold for dataset-driven worlds with changing
/// topology between runs (the §5.1 methodology).
#[test]
fn exactness_survives_topology_resampling() {
    let cfg = SimulationConfig {
        sensor_count: 70,
        rounds: 20,
        runs: 5, // five distinct placements/trees
        ..SimulationConfig::default()
    };
    for kind in [AlgorithmKind::Iq, AlgorithmKind::Hbc, AlgorithmKind::LcllS] {
        let m = run_experiment(&cfg, kind);
        assert_eq!(m.exactness, 1.0, "{}", kind.name());
    }
}
