//! Determinism guarantees of the parallel execution layer: parallel and
//! sequential execution must produce *bit-for-bit* identical aggregates,
//! regardless of worker count or scheduling.

use wsn_sim::experiments::{self, run_sweep_threads};
use wsn_sim::runner::{run_experiment_threads, run_experiment_with_threads};
use wsn_sim::{AlgorithmKind, SimulationConfig};

fn small_cfg() -> SimulationConfig {
    SimulationConfig {
        sensor_count: 60,
        rounds: 30,
        runs: 4,
        ..SimulationConfig::default()
    }
}

#[test]
fn parallel_equals_sequential_for_every_paper_algorithm() {
    let cfg = small_cfg();
    for kind in AlgorithmKind::PAPER_SET {
        let sequential = run_experiment_threads(&cfg, kind, 1);
        for threads in [2, 4, 8] {
            let parallel = run_experiment_threads(&cfg, kind, threads);
            assert_eq!(
                sequential,
                parallel,
                "{} must aggregate bit-identically on {threads} threads",
                kind.name()
            );
        }
    }
}

#[test]
fn parallel_equals_sequential_with_custom_builder() {
    let cfg = small_cfg();
    let builder = |q: cqp_core::QueryConfig,
                   _: &wsn_net::MessageSizes|
     -> Box<dyn cqp_core::ContinuousQuantile> { Box::new(cqp_core::Pos::new(q)) };
    let sequential = run_experiment_with_threads(&cfg, &builder, 1);
    let parallel = run_experiment_with_threads(&cfg, &builder, 3);
    assert_eq!(sequential, parallel);
}

#[test]
fn parallel_equals_sequential_under_message_loss() {
    // Loss draws extra RNG streams; they too must be scheduling-invariant.
    let cfg = SimulationConfig {
        loss: Some(0.2),
        ..small_cfg()
    };
    let sequential = run_experiment_threads(&cfg, AlgorithmKind::Pos, 1);
    let parallel = run_experiment_threads(&cfg, AlgorithmKind::Pos, 4);
    assert_eq!(sequential, parallel);
}

#[test]
fn sweep_grid_is_scheduling_invariant() {
    let mut sweep = experiments::adaptive(true);
    sweep.cells.truncate(2);
    for c in &mut sweep.cells {
        c.config.sensor_count = 60;
        c.config.rounds = 15;
        c.config.runs = 2;
    }
    let sequential = run_sweep_threads(&sweep, 1);
    let parallel = run_sweep_threads(&sweep, 6);
    assert_eq!(sequential.results, parallel.results);
    assert_eq!(sequential.results.len(), sweep.algorithms.len());
    for row in &sequential.results {
        assert_eq!(row.len(), sweep.cells.len());
    }
}

#[test]
fn sweep_respects_skip_entries_in_parallel() {
    let mut sweep = experiments::adaptive(true);
    sweep.cells.truncate(2);
    for c in &mut sweep.cells {
        c.config.sensor_count = 60;
        c.config.rounds = 10;
        c.config.runs = 1;
    }
    let skip_label = sweep.cells[1].label.clone();
    let skip_alg = sweep.algorithms[0];
    sweep.skip.push((skip_alg, skip_label));
    let out = run_sweep_threads(&sweep, 4);
    assert!(out.results[0][1].is_none(), "skipped cell must stay empty");
    assert!(out.results[0][0].is_some());
    assert!(out.results[1][1].is_some());
}

#[test]
fn wsn_threads_env_forces_sequential_fallback() {
    // `thread_count` must honour WSN_THREADS; with 1 the pool degrades to
    // the caller's thread. Set the env var for this whole test binary's
    // process before sampling it.
    std::env::set_var("WSN_THREADS", "1");
    assert_eq!(wsn_sim::parallel::thread_count(), 1);
    std::env::set_var("WSN_THREADS", "7");
    assert_eq!(wsn_sim::parallel::thread_count(), 7);
    std::env::set_var("WSN_THREADS", "0");
    assert_eq!(
        wsn_sim::parallel::thread_count(),
        1,
        "0 clamps to sequential"
    );
    std::env::set_var("WSN_THREADS", "not-a-number");
    assert!(wsn_sim::parallel::thread_count() >= 1, "garbage falls back");
    std::env::remove_var("WSN_THREADS");
    assert!(wsn_sim::parallel::thread_count() >= 1);
}

#[test]
fn scratch_buffer_reuse_does_not_change_network_accounting() {
    // Regression guard for the zero-allocation hot path: convergecast and
    // broadcast go through reusable scratch buffers owned by `Network`;
    // stats and energy must match a freshly-built network replaying the
    // same waves (i.e. reuse is invisible).
    use wsn_net::{
        Aggregate, MessageSizes, Network, NodeId, Point, RadioModel, RoutingTree, Topology,
    };

    #[derive(Debug, Clone, Default)]
    struct Sum(i64);
    impl Aggregate for Sum {
        fn merge(&mut self, other: Self) {
            self.0 += other.0;
        }
        fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
            sizes.counter_bits
        }
    }

    fn total_energy(net: &Network) -> f64 {
        (0..net.len())
            .map(|i| net.ledger().consumed(NodeId(i as u32)))
            .sum()
    }

    fn build() -> Network {
        let positions: Vec<Point> = (0..25)
            .map(|i| Point::new((i % 5) as f64 * 20.0, (i / 5) as f64 * 20.0))
            .collect();
        let topo = Topology::build(positions, 25.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    let waves = 5;
    // Reused network: one instance runs all waves (scratch buffers warm
    // after the first).
    let mut reused = build();
    let mut reused_answers = Vec::new();
    for _ in 0..waves {
        let agg = reused.convergecast(|id| Some(Sum(id.index() as i64)));
        reused_answers.push(agg.map(|a| a.0));
        let received = reused.broadcast(64);
        assert!(received.all());
        reused.end_round();
    }

    // Fresh networks: every wave gets a cold instance.
    let mut fresh_energy = 0.0;
    let mut fresh_answers = Vec::new();
    let mut fresh_stats = (0u64, 0u64);
    for _ in 0..waves {
        let mut net = build();
        let agg = net.convergecast(|id| Some(Sum(id.index() as i64)));
        fresh_answers.push(agg.map(|a| a.0));
        let received = net.broadcast(64);
        assert!(received.all());
        net.end_round();
        fresh_energy += total_energy(&net);
        fresh_stats.0 += net.stats().messages;
        fresh_stats.1 += net.stats().bits;
    }

    assert_eq!(reused_answers, fresh_answers);
    assert_eq!(
        (reused.stats().messages, reused.stats().bits),
        fresh_stats,
        "traffic accounting must be identical with warm scratch buffers"
    );
    let diff = (total_energy(&reused) - fresh_energy).abs();
    assert!(diff < 1e-12, "energy accounting drifted by {diff}");
}
