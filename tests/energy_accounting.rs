//! Energy/traffic accounting invariants across the whole stack: the
//! figures are only as trustworthy as the ledger behind them.

use cqp_core::payloads::ValueList;
use cqp_core::QueryConfig;
use wsn_data::Rng;
use wsn_net::{Aggregate, MessageSizes, Network, NodeId, Point, RadioModel, RoutingTree, Topology};
use wsn_sim::config::{AlgorithmKind, SimulationConfig};
use wsn_sim::run_experiment;

fn line_net(n_sensors: usize, range: f64) -> Network {
    let positions: Vec<Point> = (0..=n_sensors)
        .map(|i| Point::new(i as f64 * 10.0, 0.0))
        .collect();
    let topo = Topology::build(positions, range);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
}

#[test]
fn unicast_charges_sender_and_parent_exactly() {
    let mut net = line_net(3, 12.0);
    // Node 3 sends 10 values to node 2, which relays, etc.
    net.convergecast(|id| (id == NodeId(3)).then(|| ValueList { vals: vec![7; 10] }))
        .unwrap();
    let total_bits = 10 * 16 + 128; // payload + one header
    let model = RadioModel::default();
    let tx = model.tx_energy(total_bits, 12.0);
    let rx = model.rx_energy(total_bits);
    // Leaf 3: tx only. Relays 2 and 1: rx + tx. Root: rx only.
    assert!((net.ledger().consumed(NodeId(3)) - tx).abs() < 1e-15);
    assert!((net.ledger().consumed(NodeId(2)) - (tx + rx)).abs() < 1e-15);
    assert!((net.ledger().consumed(NodeId(1)) - (tx + rx)).abs() < 1e-15);
    assert!((net.ledger().consumed(NodeId::ROOT) - rx).abs() < 1e-15);
    assert_eq!(net.stats().bits, 3 * total_bits);
    assert_eq!(net.stats().values, 30);
}

#[test]
fn longer_radio_range_costs_more_per_bit() {
    let run = |range: f64| {
        let mut net = line_net(5, range);
        net.broadcast(64);
        net.ledger().max_sensor_consumption()
    };
    assert!(run(35.0) > run(12.0));
}

#[test]
fn energy_is_monotone_and_nonnegative_throughout_a_simulation() {
    let n = 60usize;
    let positions: Vec<Point> = (0..=n)
        .map(|i| Point::new((i % 8) as f64 * 12.0, (i / 8) as f64 * 12.0))
        .collect();
    let topo = Topology::build(positions, 20.0);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
    let query = QueryConfig::median(n, 0, 1023);
    let mut alg = AlgorithmKind::Hbc.build(query, &MessageSizes::default());
    let mut rng = Rng::seed_from_u64(5);
    let mut prev_total = 0.0;
    for _ in 0..25 {
        let values: Vec<i64> = (0..n).map(|_| rng.range_i64(0, 1023)).collect();
        alg.round(&mut net, &values);
        let total: f64 = (0..net.len())
            .map(|i| net.ledger().consumed(NodeId(i as u32)))
            .sum();
        assert!(total >= prev_total, "ledger must be monotone");
        prev_total = total;
    }
    assert!(prev_total > 0.0);
}

#[test]
fn silence_costs_nothing() {
    let mut net = line_net(10, 12.0);
    let before = net.ledger().max_sensor_consumption();
    let agg: Option<ValueList> = net.convergecast(|_| None);
    assert!(agg.is_none());
    assert_eq!(net.ledger().max_sensor_consumption(), before);
}

#[test]
fn fragmentation_charges_extra_headers() {
    let sizes = MessageSizes::default();
    let mut one = line_net(1, 12.0);
    one.convergecast(|_| Some(ValueList { vals: vec![1; 64] }))
        .unwrap();
    let bits_one = one.stats().bits;

    let mut two = line_net(1, 12.0);
    two.convergecast(|_| Some(ValueList { vals: vec![1; 65] }))
        .unwrap();
    let bits_two = two.stats().bits;

    // 65 values spill into a second fragment: one extra header plus the
    // extra value.
    assert_eq!(bits_two - bits_one, sizes.header_bits + sizes.value_bits);
    assert_eq!(one.stats().messages, 1);
    assert_eq!(two.stats().messages, 2);
}

#[test]
fn broadcast_energy_scales_with_internal_nodes_only() {
    // Star: root + 6 leaves -> exactly one transmission.
    let mut positions = vec![Point::new(0.0, 0.0)];
    for i in 0..6 {
        let a = i as f64;
        positions.push(Point::new(a.cos() * 5.0, a.sin() * 5.0));
    }
    let topo = Topology::build(positions, 7.0);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
    net.broadcast(16);
    assert_eq!(net.stats().messages, 1);
    // Every leaf paid one reception.
    let rx = net.model().rx_energy(16 + net.sizes().header_bits);
    for i in 1..=6u32 {
        assert!((net.ledger().consumed(NodeId(i)) - rx).abs() < 1e-15);
    }
}

#[test]
fn hotspot_is_near_the_root_for_collection_protocols() {
    let cfg = SimulationConfig {
        sensor_count: 80,
        rounds: 20,
        runs: 1,
        ..SimulationConfig::default()
    };
    // TAG funnels everything to the sink: the hotspot must consume much
    // more than the average node.
    let m = run_experiment(&cfg, AlgorithmKind::Tag);
    assert!(m.max_node_energy_per_round > 0.0);
    let lifetime_bound = RadioModel::default().initial_energy / m.max_node_energy_per_round;
    assert!((m.lifetime_rounds - lifetime_bound).abs() / lifetime_bound < 1e-9);
}

#[test]
fn lifetime_and_energy_are_reciprocal() {
    let cfg = SimulationConfig {
        sensor_count: 70,
        rounds: 25,
        runs: 2,
        ..SimulationConfig::default()
    };
    for kind in [AlgorithmKind::Iq, AlgorithmKind::Pos] {
        let m = run_experiment(&cfg, kind);
        // lifetime = E_init / hotspot-per-round must hold per run; after
        // averaging the relation only holds approximately, but tightly so
        // for low-variance runs.
        let predicted = RadioModel::default().initial_energy / m.max_node_energy_per_round;
        let ratio = m.lifetime_rounds / predicted;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "{}: lifetime {} vs predicted {}",
            kind.name(),
            m.lifetime_rounds,
            predicted
        );
    }
}

#[test]
fn value_counter_tracks_hops() {
    let mut net = line_net(4, 12.0);
    // Deepest node contributes one value, relayed over 4 hops.
    net.convergecast(|id| (id == NodeId(4)).then(|| ValueList::single(9)))
        .unwrap();
    assert_eq!(net.stats().values, 4);
}

#[test]
fn aggregate_payload_sizes_drive_cost() {
    // A payload of four counters costs less than one of twenty values.
    let sizes = MessageSizes::default();
    let counters = cqp_core::payloads::MovementCounters::default();
    let list = ValueList { vals: vec![0; 20] };
    assert!(counters.payload_bits(&sizes) < list.payload_bits(&sizes));
}
