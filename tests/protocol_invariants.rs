//! Protocol-level invariants the paper states or implies: refinement
//! complexity bounds, silence on unchanged rounds, IQ's one-refinement
//! guarantee, and the complexity separations between the approaches.

use cqp_core::hbc::{Hbc, HbcConfig};
use cqp_core::iq::{Iq, IqConfig};
use cqp_core::lcll::{Lcll, RefiningStrategy};
use cqp_core::pos::Pos;
use cqp_core::{ContinuousQuantile, QueryConfig};
use wsn_data::Rng;
use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology};

fn grid_net(n_sensors: usize) -> Network {
    let cols = (n_sensors as f64).sqrt().ceil() as usize + 1;
    let positions: Vec<Point> = (0..=n_sensors)
        .map(|i| Point::new((i % cols) as f64 * 9.0, (i / cols) as f64 * 9.0))
        .collect();
    let topo = Topology::build(positions, 13.0);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
}

fn random_rounds(n: usize, rounds: usize, range: i64, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..rounds)
        .map(|_| (0..n).map(|_| rng.range_i64(0, range - 1)).collect())
        .collect()
}

#[test]
fn iq_never_needs_more_than_one_refinement() {
    let n = 60;
    let mut net = grid_net(n);
    let query = QueryConfig::median(n, 0, 1 << 20);
    let mut iq = Iq::new(query, IqConfig::default());
    for (t, values) in random_rounds(n, 60, 1 << 20, 3).iter().enumerate() {
        iq.round(&mut net, values);
        assert!(iq.last_refinements() <= 1, "round {t}");
    }
}

#[test]
fn pos_refinements_bounded_by_log_of_range() {
    let n = 50;
    let range: i64 = 1 << 16;
    let mut net = grid_net(n);
    let query = QueryConfig::median(n, 0, range - 1);
    let mut pos = Pos::new(query);
    for (t, values) in random_rounds(n, 40, range, 5).iter().enumerate() {
        pos.round(&mut net, values);
        // log2(2^16) + direct retrieval + slack.
        assert!(
            pos.last_refinements() <= 18,
            "round {t}: {}",
            pos.last_refinements()
        );
    }
}

#[test]
fn hbc_refinements_bounded_by_log_b_of_range() {
    let n = 50;
    let range: i64 = 1 << 16;
    let sizes = MessageSizes::default();
    let mut net = grid_net(n);
    let query = QueryConfig::median(n, 0, range - 1);
    let mut hbc = Hbc::new(query, HbcConfig::default(), &sizes);
    let b = hbc.buckets() as f64;
    let bound = ((range as f64).ln() / b.ln()).ceil() as u32 + 2;
    for (t, values) in random_rounds(n, 40, range, 7).iter().enumerate() {
        hbc.round(&mut net, values);
        assert!(
            hbc.last_refinements() <= bound,
            "round {t}: {} > {bound}",
            hbc.last_refinements()
        );
    }
}

#[test]
fn hbc_needs_fewer_refinements_than_pos_on_average() {
    // The point of the cost model: b-ary beats binary in iterations.
    let n = 50;
    let range: i64 = 1 << 16;
    let sizes = MessageSizes::default();
    let rounds = random_rounds(n, 50, range, 11);

    let mut net = grid_net(n);
    let query = QueryConfig::median(n, 0, range - 1);
    // Compare the pure search strategies: no direct retrieval on either
    // side (with it, both collapse to one retrieval at |N| = 50).
    let mut pos = Pos::new(query).without_direct_retrieval();
    let mut pos_total = 0u32;
    for values in &rounds {
        pos.round(&mut net, values);
        pos_total += pos.last_refinements();
    }

    let mut net = grid_net(n);
    let mut hbc = Hbc::new(
        query,
        HbcConfig {
            direct_retrieval: false,
            ..HbcConfig::default()
        },
        &sizes,
    );
    let mut hbc_total = 0u32;
    for values in &rounds {
        hbc.round(&mut net, values);
        hbc_total += hbc.last_refinements();
    }
    assert!(
        hbc_total < pos_total,
        "HBC {hbc_total} should refine less than POS {pos_total}"
    );
}

#[test]
fn quiet_rounds_generate_zero_traffic_for_every_filter_protocol() {
    let n = 40;
    let query = QueryConfig::median(n, 0, 1023);
    let sizes = MessageSizes::default();
    let values: Vec<i64> = (0..n).map(|i| (i as i64 * 37) % 1024).collect();

    let protos: Vec<Box<dyn ContinuousQuantile>> = vec![
        Box::new(Pos::new(query)),
        Box::new(Hbc::new(query, HbcConfig::default(), &sizes)),
        Box::new(Iq::new(query, IqConfig::default())),
        Box::new(Lcll::new(query, RefiningStrategy::Hierarchical, &sizes)),
        Box::new(Lcll::new(query, RefiningStrategy::Slip, &sizes)),
    ];
    for mut alg in protos {
        let mut net = grid_net(n);
        alg.round(&mut net, &values);
        alg.round(&mut net, &values); // settle any post-init bookkeeping
        let before = net.stats().messages;
        for _ in 0..5 {
            alg.round(&mut net, &values);
        }
        assert_eq!(
            net.stats().messages,
            before,
            "{} spent messages on identical rounds",
            alg.name()
        );
    }
}

#[test]
fn lcll_slip_is_linear_hierarchical_is_logarithmic() {
    let n = 30;
    let range: i64 = 1 << 22;
    let sizes = MessageSizes::default();
    let query = QueryConfig::median(n, 0, range - 1);

    let refinements_after_jump = |strategy: RefiningStrategy, d: i64| {
        let mut net = grid_net(n);
        let mut alg = Lcll::new(query, strategy, &sizes).without_direct_retrieval();
        let v0: Vec<i64> = (0..n).map(|i| (range / 2) + i as i64).collect();
        alg.round(&mut net, &v0);
        let v1: Vec<i64> = v0.iter().map(|v| v + d).collect();
        alg.round(&mut net, &v1);
        alg.last_refinements()
    };

    let slip_small = refinements_after_jump(RefiningStrategy::Slip, 256);
    let slip_large = refinements_after_jump(RefiningStrategy::Slip, 256 * 64);
    assert!(
        slip_large as f64 >= slip_small as f64 * 16.0,
        "slip {slip_small} -> {slip_large} should scale ~linearly"
    );

    let h_small = refinements_after_jump(RefiningStrategy::Hierarchical, 256);
    let h_large = refinements_after_jump(RefiningStrategy::Hierarchical, 256 * 64);
    assert!(
        h_large <= h_small + 4,
        "hierarchical {h_small} -> {h_large} should scale ~logarithmically"
    );
}

#[test]
fn iq_trades_validation_values_against_refinements() {
    // A drifting workload: after Ξ adapts, IQ sends a few values per round
    // during validation instead of refinement round-trips.
    let n = 60;
    let mut net = grid_net(n);
    let query = QueryConfig::median(n, 0, 100_000);
    let mut iq = Iq::new(query, IqConfig::default());
    let mut refinements = 0u32;
    let mut a_sizes = 0usize;
    for t in 0..40i64 {
        let values: Vec<i64> = (0..n).map(|i| 5000 + i as i64 * 20 + t * 7).collect();
        iq.round(&mut net, &values);
        if t > 5 {
            refinements += iq.last_refinements();
            a_sizes += iq.last_validation_set_size();
        }
    }
    assert_eq!(refinements, 0, "steady drift must be absorbed by Ξ");
    assert!(a_sizes > 0, "…which requires Ξ to carry values");
}

#[test]
fn hbc_variant_avoids_broadcasts_but_refines_more() {
    let n = 40;
    let query = QueryConfig::median(n, 0, 4095);
    let sizes = MessageSizes::default();
    let rounds: Vec<Vec<i64>> = (0..20)
        .map(|t| (0..n).map(|i| 1000 + i as i64 * 9 + t * 13).collect())
        .collect();

    let run = |cfg: HbcConfig| {
        let mut net = grid_net(n);
        let mut alg = Hbc::new(query, cfg, &sizes);
        let mut refinements = 0;
        for values in &rounds {
            alg.round(&mut net, values);
            refinements += alg.last_refinements();
        }
        (net.stats().broadcasts, refinements)
    };

    let (basic_bc, basic_ref) = run(HbcConfig {
        direct_retrieval: false,
        ..HbcConfig::default()
    });
    let (variant_bc, variant_ref) = run(HbcConfig {
        direct_retrieval: false,
        eliminate_threshold_broadcast: true,
        ..HbcConfig::default()
    });
    assert!(
        variant_bc < basic_bc,
        "variant {variant_bc} vs basic {basic_bc}"
    );
    assert!(
        variant_ref >= basic_ref,
        "the broadcast saving is paid in refinements (paper §4.1.2)"
    );
}

#[test]
fn tag_transmitted_values_scale_linearly_with_n() {
    let count_values = |n: usize| {
        let mut net = grid_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let mut tag = cqp_core::Tag::new(query);
        let values: Vec<i64> = (0..n).map(|i| i as i64).collect();
        tag.round(&mut net, &values);
        net.stats().values
    };
    let small = count_values(30);
    let large = count_values(120);
    // O(|N|) per-node values -> network totals grow superlinearly in the
    // funnel; at minimum, quadrupling N must more than quadruple values.
    assert!(large > small * 4, "TAG {small} -> {large}");
}
