//! Shape checks against the paper's figures: we do not chase absolute
//! numbers (different radio testbed), but the qualitative findings of §5.2
//! must reproduce. These run on scaled-down sweeps to stay CI-friendly;
//! `cargo run -p wsn-bench --release --bin experiments` produces the
//! full-scale versions recorded in EXPERIMENTS.md.

use wsn_data::synthetic::SyntheticConfig;
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};
use wsn_sim::run_experiment;

fn cfg(n: usize, dataset: DatasetSpec) -> SimulationConfig {
    SimulationConfig {
        sensor_count: n,
        rounds: 60,
        runs: 2,
        dataset,
        ..SimulationConfig::default()
    }
}

fn energy(c: &SimulationConfig, kind: AlgorithmKind) -> f64 {
    run_experiment(c, kind).max_node_energy_per_round
}

#[test]
fn fig6_energy_grows_with_node_count() {
    // §5.2.1: "With increasing node count |N|, the maximum per-node energy
    // consumption grows for all approaches."
    for kind in [AlgorithmKind::Pos, AlgorithmKind::Hbc, AlgorithmKind::Iq] {
        let small = energy(
            &cfg(60, DatasetSpec::Synthetic(SyntheticConfig::default())),
            kind,
        );
        let large = energy(
            &cfg(240, DatasetSpec::Synthetic(SyntheticConfig::default())),
            kind,
        );
        assert!(
            large > small,
            "{}: energy must grow with |N| ({small} vs {large})",
            kind.name()
        );
    }
}

#[test]
fn fig6_reception_share_grows_with_density() {
    // §5.2.1: "The vast majority of their increase in energy consumption
    // comes from the growing number of values an intermediate node has to
    // receive" — denser networks shift the hotspot's budget toward rx.
    for kind in [AlgorithmKind::Pos, AlgorithmKind::Iq] {
        let sparse = run_experiment(
            &cfg(60, DatasetSpec::Synthetic(SyntheticConfig::default())),
            kind,
        )
        .hotspot_rx_fraction;
        let dense = run_experiment(
            &cfg(300, DatasetSpec::Synthetic(SyntheticConfig::default())),
            kind,
        )
        .hotspot_rx_fraction;
        assert!(
            dense > sparse,
            "{}: rx share must grow with density ({sparse:.2} -> {dense:.2})",
            kind.name()
        );
    }
}

#[test]
fn fig7_small_period_hurts_everyone() {
    // §5.2.2: "all solutions perform best for high τ".
    for kind in [AlgorithmKind::Pos, AlgorithmKind::Hbc, AlgorithmKind::Iq] {
        let slow = energy(
            &cfg(
                150,
                DatasetSpec::Synthetic(SyntheticConfig {
                    period: 250,
                    ..SyntheticConfig::default()
                }),
            ),
            kind,
        );
        let fast = energy(
            &cfg(
                150,
                DatasetSpec::Synthetic(SyntheticConfig {
                    period: 8,
                    ..SyntheticConfig::default()
                }),
            ),
            kind,
        );
        assert!(
            fast > slow,
            "{}: τ=8 must cost more than τ=250 ({fast} vs {slow})",
            kind.name()
        );
    }
}

#[test]
fn fig7_iq_wins_under_strong_temporal_correlation() {
    // The headline result: the heuristic beats the (asymptotically
    // optimal) histogram search when consecutive quantiles correlate.
    let c = cfg(
        200,
        DatasetSpec::Synthetic(SyntheticConfig {
            period: 250,
            ..SyntheticConfig::default()
        }),
    );
    let iq = energy(&c, AlgorithmKind::Iq);
    for other in [AlgorithmKind::Pos, AlgorithmKind::Hbc, AlgorithmKind::Tag] {
        let e = energy(&c, other);
        assert!(
            iq < e,
            "IQ ({iq}) should beat {} ({e}) at τ=250",
            other.name()
        );
    }
}

#[test]
fn fig8_noise_hurts_filter_protocols_but_not_lcll_h() {
    // §5.2.3: POS/HBC/IQ degrade with ψ; LCLL-H is barely affected.
    let quiet = |kind| {
        energy(
            &cfg(
                150,
                DatasetSpec::Synthetic(SyntheticConfig {
                    noise_percent: 0.0,
                    ..SyntheticConfig::default()
                }),
            ),
            kind,
        )
    };
    let noisy = |kind| {
        energy(
            &cfg(
                150,
                DatasetSpec::Synthetic(SyntheticConfig {
                    noise_percent: 50.0,
                    ..SyntheticConfig::default()
                }),
            ),
            kind,
        )
    };
    for kind in [AlgorithmKind::Pos, AlgorithmKind::Iq] {
        let (q, n) = (quiet(kind), noisy(kind));
        assert!(
            n > q * 1.2,
            "{}: noise should hurt ({q} -> {n})",
            kind.name()
        );
    }
    let (q, n) = (quiet(AlgorithmKind::LcllH), noisy(AlgorithmKind::LcllH));
    assert!(
        n < q * 2.0,
        "LCLL-H should be comparatively noise-insensitive ({q} -> {n})"
    );
}

#[test]
fn fig9_energy_grows_with_radio_range() {
    // §5.2.4: more neighbors ⇒ more receptions ⇒ more energy.
    for kind in [AlgorithmKind::Pos, AlgorithmKind::Iq] {
        let short = energy(
            &SimulationConfig {
                radio_range: 20.0,
                ..cfg(250, DatasetSpec::Synthetic(SyntheticConfig::default()))
            },
            kind,
        );
        let long = energy(
            &SimulationConfig {
                radio_range: 70.0,
                ..cfg(250, DatasetSpec::Synthetic(SyntheticConfig::default()))
            },
            kind,
        );
        assert!(
            long > short,
            "{}: ρ=70 must cost more than ρ=20 ({long} vs {short})",
            kind.name()
        );
    }
}

#[test]
fn fig10_more_skipped_samples_cost_more() {
    // §5.2.5: lower sampling rate ⇒ weaker correlation ⇒ higher cost.
    use wsn_data::pressure::PressureConfig;
    let pressure = |skip: u32| {
        DatasetSpec::Pressure(PressureConfig {
            sensor_count: 150,
            steps: 60 * skip as usize + 1,
            skip,
            ..PressureConfig::default()
        })
    };
    for kind in [AlgorithmKind::Iq, AlgorithmKind::LcllS] {
        let dense = energy(&cfg(150, pressure(1)), kind);
        let sparse = energy(&cfg(150, pressure(16)), kind);
        assert!(
            sparse > dense,
            "{}: skip=16 must cost more than skip=1 ({sparse} vs {dense})",
            kind.name()
        );
    }
}

#[test]
fn loss_increases_rank_error_monotonically_in_expectation() {
    let base = cfg(120, DatasetSpec::Synthetic(SyntheticConfig::default()));
    let err = |p: f64| {
        let c = SimulationConfig {
            loss: (p > 0.0).then_some(p),
            ..base.clone()
        };
        run_experiment(&c, AlgorithmKind::Pos).mean_rank_error
    };
    let none = err(0.0);
    let heavy = err(0.25);
    assert_eq!(none, 0.0, "no loss, no error");
    assert!(heavy > 0.0, "heavy loss must show up as rank error");
}

#[test]
fn adaptive_is_never_far_from_the_best_fixed_choice() {
    for period in [250u32, 8] {
        let c = cfg(
            150,
            DatasetSpec::Synthetic(SyntheticConfig {
                period,
                ..SyntheticConfig::default()
            }),
        );
        let iq = energy(&c, AlgorithmKind::Iq);
        let hbc = energy(&c, AlgorithmKind::Hbc);
        let adaptive = energy(&c, AlgorithmKind::Adaptive);
        let best = iq.min(hbc);
        assert!(
            adaptive <= best * 1.7,
            "τ={period}: adaptive {adaptive} too far from best fixed {best}"
        );
    }
}

#[test]
fn tag_is_the_most_expensive_baseline() {
    let c = cfg(150, DatasetSpec::Synthetic(SyntheticConfig::default()));
    let tag = energy(&c, AlgorithmKind::Tag);
    for kind in [AlgorithmKind::Iq, AlgorithmKind::Hbc, AlgorithmKind::LcllS] {
        let e = energy(&c, kind);
        assert!(tag > e, "TAG ({tag}) must exceed {} ({e})", kind.name());
    }
}
